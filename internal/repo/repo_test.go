package repo

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"xpdl/internal/model"
)

func writeModels(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func basicModels() map[string]string {
	return map[string]string{
		"ShaveL2.xpdl":   `<cache name="ShaveL2" size="128" unit="KiB" sets="2" replacement="LRU" write_policy="copyback" />`,
		"DDR3_16G.xpdl":  `<memory name="DDR3_16G" type="DDR3" size="16" unit="GB" static_power="4" static_power_unit="W" />`,
		"sub/pcie3.xpdl": `<interconnect name="pcie3"><channel name="up_link" max_bandwidth="6" max_bandwidth_unit="GiB/s"/></interconnect>`,
	}
}

func TestScanAndLoad(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir, basicModels())
	r, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	ids := r.Idents()
	want := []string{"DDR3_16G", "ShaveL2", "pcie3"}
	if len(ids) != len(want) {
		t.Fatalf("idents = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("idents = %v, want %v", ids, want)
		}
	}
	c, err := r.Load("ShaveL2")
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != "cache" || c.Name != "ShaveL2" {
		t.Fatalf("loaded %s", c)
	}
	// memory type="DDR3" is a meta reference kept on the component.
	m, err := r.Load("DDR3_16G")
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != "DDR3" {
		t.Fatalf("DDR3_16G type = %q", m.Type)
	}
	if !r.Has("pcie3") || r.Has("zz") {
		t.Fatal("Has wrong")
	}
	st := r.Stats()
	if st.LocalParses != 3 || st.Loads != 2 || st.CacheHits != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLoadMissing(t *testing.T) {
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load("nope"); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateIdentRejected(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir, map[string]string{
		"a.xpdl": `<cache name="Dup" size="1" unit="KiB"/>`,
		"b.xpdl": `<cache name="Dup" size="2" unit="KiB"/>`,
	})
	if _, err := New(dir); err == nil || !strings.Contains(err.Error(), "defined in both") {
		t.Fatalf("duplicate not rejected: %v", err)
	}
}

func TestRootWithoutIdentRejected(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir, map[string]string{"x.xpdl": `<cache size="1" unit="KiB"/>`})
	if _, err := New(dir); err == nil || !strings.Contains(err.Error(), "neither name= nor id=") {
		t.Fatalf("anonymous root not rejected: %v", err)
	}
}

func TestInvalidFileRejected(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir, map[string]string{"x.xpdl": `<cache name="c" sets="two"/>`})
	if _, err := New(dir); err == nil {
		t.Fatal("invalid descriptor accepted")
	}
}

func TestLoadFileAndRegister(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir, map[string]string{"sys.xpdl": `<system id="s1"><node id="n0"/></system>`})
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.LoadFile(filepath.Join(dir, "sys.xpdl"))
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "s1" || !r.Has("s1") {
		t.Fatal("LoadFile did not register")
	}
	mem := model.New("cpu")
	mem.Name = "InMem"
	if err := r.Register(mem); err != nil {
		t.Fatal(err)
	}
	got, err := r.Load("InMem")
	if err != nil || got != mem {
		t.Fatal("Register/Load round trip failed")
	}
	anon := model.New("cpu")
	if err := r.Register(anon); err == nil {
		t.Fatal("anonymous Register should fail")
	}
}

func newRemoteServer(t *testing.T, files map[string]string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	for name, src := range files {
		src := src
		mux.HandleFunc("/"+name, func(w http.ResponseWriter, req *http.Request) {
			fmt.Fprint(w, src)
		})
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestRemoteFetch(t *testing.T) {
	srv := newRemoteServer(t, map[string]string{
		"Nvidia_K20c.xpdl": `<device name="Nvidia_K20c" extends="Nvidia_Kepler" compute_capability="3.5"/>`,
	})
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	r.AddRemote(srv.URL + "/") // trailing slash is trimmed
	c, err := r.Load("Nvidia_K20c")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "Nvidia_K20c" {
		t.Fatalf("remote load = %s", c)
	}
	// Second load is a cache hit, not a second fetch.
	if _, err := r.Load("Nvidia_K20c"); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.RemoteFetches != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := r.Load("Missing_Model"); err == nil {
		t.Fatal("missing remote model should fail")
	}
}

func TestRemoteFallbackOrder(t *testing.T) {
	bad := newRemoteServer(t, nil) // serves nothing
	good := newRemoteServer(t, map[string]string{
		"M.xpdl": `<cpu name="M"/>`,
	})
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	r.AddRemote(bad.URL)
	r.AddRemote(good.URL)
	if _, err := r.Load("M"); err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
}

func TestPrefetchConcurrent(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{}
	var idents []string
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("C%02d", i)
		files[name+".xpdl"] = fmt.Sprintf(`<cache name=%q size="%d" unit="KiB"/>`, name, i+1)
		idents = append(idents, name)
	}
	writeModels(t, dir, files)
	r, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Prefetch(idents, 8); err != nil {
		t.Fatal(err)
	}
	if err := r.Prefetch([]string{"missing"}, 0); err == nil {
		t.Fatal("prefetch of missing ident should error")
	}
}

func TestConcurrentLoads(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir, basicModels())
	r, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := r.Load("ShaveL2"); err != nil {
					t.Error(err)
					return
				}
				r.Idents()
				r.Stats()
				r.Has("pcie3")
			}
		}()
	}
	wg.Wait()
}

func TestReferencedTypes(t *testing.T) {
	sys := model.New("system")
	sys.ID = "s"
	d := model.New("device")
	d.ID = "gpu1"
	d.Type = "Nvidia_K20c"
	k := model.New("device")
	k.Name = "Nvidia_K20c"
	k.Extends = []string{"Nvidia_Kepler"}
	ic := model.New("interconnect")
	ic.ID = "conn1"
	ic.Type = "pcie3"
	sys.Children = append(sys.Children, d, k, ic)
	got := ReferencedTypes(sys)
	want := []string{"Nvidia_K20c", "Nvidia_Kepler", "pcie3"}
	if len(got) != len(want) {
		t.Fatalf("refs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("refs = %v, want %v", got, want)
		}
	}
}

func TestRemoteCorruptDescriptorRejected(t *testing.T) {
	srv := newRemoteServer(t, map[string]string{
		"Broken.xpdl":  `<cpu name="Broken"`,              // not well-formed
		"BadSem.xpdl":  `<cache name="BadSem" sets="x"/>`, // fails validation
		"NoIdent.xpdl": `<cpu/>`,                          // missing name/id
	})
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	r.AddRemote(srv.URL)
	for _, ident := range []string{"Broken", "BadSem", "NoIdent"} {
		if _, err := r.Load(ident); err == nil {
			t.Errorf("corrupt remote descriptor %s accepted", ident)
		}
		if r.Has(ident) {
			t.Errorf("corrupt descriptor %s cached", ident)
		}
	}
}

func TestRemoteMismatchedIdentifier(t *testing.T) {
	// The server returns a descriptor whose root name differs from the
	// requested identifier: the repository registers it under its real
	// name, so the requested name stays unresolved on the next lookup
	// miss unless it matches.
	srv := newRemoteServer(t, map[string]string{
		"Alias.xpdl": `<cpu name="RealName"/>`,
	})
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	r.AddRemote(srv.URL)
	c, err := r.Load("Alias")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "RealName" {
		t.Fatalf("loaded %s", c)
	}
	// The real identifier is now cached.
	if !r.Has("RealName") {
		t.Fatal("real identifier not registered")
	}
}
