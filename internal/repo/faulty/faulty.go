// Package faulty is a fault-injection test harness for the distributed
// model repository: an httptest server with programmable per-identifier
// failure scripts (drop the connection, delay, answer 500/429/arbitrary
// status, truncate the body, corrupt the XML, block until released) and
// a request log that records every request with its conditional headers
// and the status served.
//
// Each incoming request for an identifier consumes one scripted action;
// when the script is exhausted the server behaves like a healthy
// xpdlrepo instance: it serves the registered descriptor with an ETag
// and answers If-None-Match revalidations with 304. Tests therefore
// express "fails twice, then recovers" as Script(id, Status(500),
// Status(500)).
package faulty

import (
	"crypto/sha256"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// Action is one scripted behavior for one request.
type Action struct {
	kind    string
	status  int
	delay   time.Duration
	release <-chan struct{}
}

// OK serves the descriptor normally (the default once a script runs dry).
func OK() Action { return Action{kind: "ok"} }

// Status answers with the given HTTP status code and no useful body.
// Use Status(500) for server errors and Status(429) for throttling.
func Status(code int) Action { return Action{kind: "status", status: code} }

// Drop severs the TCP connection mid-response without a status line;
// clients observe a transport error.
func Drop() Action { return Action{kind: "drop"} }

// Delay sleeps before serving the descriptor normally, to trip
// per-attempt timeouts.
func Delay(d time.Duration) Action { return Action{kind: "delay", delay: d} }

// Truncate advertises the full Content-Length but sends only half the
// body before severing the connection; clients observe an unexpected
// EOF while reading.
func Truncate() Action { return Action{kind: "truncate"} }

// Corrupt serves a 200 whose body is not well-formed XML.
func Corrupt() Action { return Action{kind: "corrupt"} }

// Hold blocks the request until the channel is closed, then serves the
// descriptor normally. Tests use it to pile up concurrent clients
// behind one in-flight fetch.
func Hold(release <-chan struct{}) Action { return Action{kind: "hold", release: release} }

// Request is one log entry.
type Request struct {
	Ident       string // identifier derived from the path ("" for /index etc.)
	Path        string
	IfNoneMatch string // conditional validator the client sent, if any
	Status      int    // status the server answered with (0 for dropped conns)
}

// Server is the programmable remote model library.
type Server struct {
	*httptest.Server

	mu      sync.Mutex
	files   map[string]string // ident -> descriptor body
	scripts map[string][]Action
	log     []Request
}

// NewServer starts a faulty remote serving the given descriptors
// (ident -> body). It is closed automatically when the test ends.
func NewServer(t testing.TB, files map[string]string) *Server {
	t.Helper()
	s := &Server{
		files:   map[string]string{},
		scripts: map[string][]Action{},
	}
	for ident, body := range files {
		s.files[ident] = body
	}
	s.Server = httptest.NewServer(http.HandlerFunc(s.serve))
	t.Cleanup(s.Close)
	return s
}

// Script appends failure actions for the identifier. Requests consume
// actions in order; once exhausted the server serves the descriptor
// normally.
func (s *Server) Script(ident string, actions ...Action) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scripts[ident] = append(s.scripts[ident], actions...)
}

// SetBody registers or replaces a descriptor body.
func (s *Server) SetBody(ident, body string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[ident] = body
}

// Requests returns a copy of the request log.
func (s *Server) Requests() []Request {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Request(nil), s.log...)
}

// RequestsFor counts logged requests for one identifier.
func (s *Server) RequestsFor(ident string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, r := range s.log {
		if r.Ident == ident {
			n++
		}
	}
	return n
}

// etagOf returns the strong ETag for a body, matching what the real
// xpdlrepo server would compute.
func etagOf(body string) string {
	return fmt.Sprintf(`"%x"`, sha256.Sum256([]byte(body)))
}

func (s *Server) serve(w http.ResponseWriter, r *http.Request) {
	ident := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/"), ".xpdl")

	s.mu.Lock()
	var act Action
	if script := s.scripts[ident]; len(script) > 0 {
		act = script[0]
		s.scripts[ident] = script[1:]
	} else {
		act = OK()
	}
	body, known := s.files[ident]
	entry := Request{
		Ident:       ident,
		Path:        r.URL.Path,
		IfNoneMatch: r.Header.Get("If-None-Match"),
	}
	s.log = append(s.log, entry)
	logIdx := len(s.log) - 1
	s.mu.Unlock()

	// Record the served status even when the action severs the
	// connection by panicking (Drop/Truncate leave it 0).
	status := 0
	defer func() {
		s.mu.Lock()
		s.log[logIdx].Status = status
		s.mu.Unlock()
	}()
	status = s.perform(w, r, act, ident, body, known)
}

// perform executes one action and reports the status served (0 when
// the connection was severed without one).
func (s *Server) perform(w http.ResponseWriter, r *http.Request, act Action, ident, body string, known bool) int {
	switch act.kind {
	case "status":
		http.Error(w, http.StatusText(act.status), act.status)
		return act.status
	case "drop":
		panic(http.ErrAbortHandler)
	case "delay":
		time.Sleep(act.delay)
		return s.serveBody(w, r, body, known)
	case "hold":
		<-act.release
		return s.serveBody(w, r, body, known)
	case "truncate":
		if !known {
			http.NotFound(w, r)
			return http.StatusNotFound
		}
		w.Header().Set("Content-Length", fmt.Sprint(len(body)))
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(body[:len(body)/2]))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // sever before the advertised length
	case "corrupt":
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`<corrupt <<` + body))
		return http.StatusOK
	default: // "ok"
		return s.serveBody(w, r, body, known)
	}
}

// serveBody serves the descriptor with an ETag, honoring
// If-None-Match with a 304 like a healthy model library.
func (s *Server) serveBody(w http.ResponseWriter, r *http.Request, body string, known bool) int {
	if !known {
		http.NotFound(w, r)
		return http.StatusNotFound
	}
	etag := etagOf(body)
	if match := r.Header.Get("If-None-Match"); match != "" && match == etag {
		w.WriteHeader(http.StatusNotModified)
		return http.StatusNotModified
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Header().Set("ETag", etag)
	w.Header().Set("Last-Modified", time.Unix(1700000000, 0).UTC().Format(http.TimeFormat))
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, body)
	return http.StatusOK
}
