// Package repo implements the distributed XPDL model repository of
// Section III: descriptor modules (.xpdl files) are indexed by their
// unique meta-model name or instance id and retrieved either from a
// local model search path or from remote model libraries addressed by
// URL (the paper envisions hardware manufacturers hosting descriptor
// downloads; cmd/xpdlrepo provides such a server).
//
// The repository is safe for concurrent use: the XPDL processing tool
// resolves submodel references in parallel while composing a system
// model, and the runtime query API may lazily load referenced
// descriptors from multiple goroutines.
package repo

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"xpdl/internal/model"
	"xpdl/internal/parser"
)

// Stats counts repository activity; useful for cache-effectiveness
// experiments (EXPERIMENTS.md E9).
type Stats struct {
	Loads         int // successful Load calls
	CacheHits     int // Loads served from cache
	LocalParses   int // descriptor files parsed from disk
	RemoteFetches int // descriptor files fetched over HTTP
}

// Repository locates, parses and caches XPDL descriptor modules.
type Repository struct {
	parser  *parser.Parser
	client  *http.Client
	remotes []string

	mu    sync.RWMutex
	files map[string]string           // ident -> file path (from Scan)
	cache map[string]*model.Component // ident -> parsed root
	stats Stats
}

// New creates a repository over the given local search paths. Call
// Scan to index them.
func New(searchPaths ...string) (*Repository, error) {
	r := &Repository{
		parser: parser.New(),
		client: &http.Client{Timeout: 10 * time.Second},
		files:  map[string]string{},
		cache:  map[string]*model.Component{},
	}
	if err := r.AddPaths(searchPaths...); err != nil {
		return nil, err
	}
	return r, nil
}

// AddPaths indexes additional local search paths.
func (r *Repository) AddPaths(paths ...string) error {
	for _, p := range paths {
		if err := r.scanDir(p); err != nil {
			return err
		}
	}
	return nil
}

// AddRemote registers a remote model library base URL. Identifiers not
// found locally are fetched as <base>/<ident>.xpdl.
func (r *Repository) AddRemote(baseURL string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.remotes = append(r.remotes, strings.TrimRight(baseURL, "/"))
}

// scanDir walks one directory tree and indexes every .xpdl file by the
// name/id of its root element. Files are parsed eagerly so that index
// collisions (the paper requires repository-wide unique names) surface
// immediately.
func (r *Repository) scanDir(dir string) error {
	return filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".xpdl") {
			return nil
		}
		c, err := r.parseFile(path)
		if err != nil {
			return err
		}
		return r.register(c, path)
	})
}

func (r *Repository) parseFile(path string) (*model.Component, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, _, err := r.parser.ParseFile(path, src)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.stats.LocalParses++
	r.mu.Unlock()
	return c, nil
}

func (r *Repository) register(c *model.Component, origin string) error {
	ident := c.Ident()
	if ident == "" {
		return fmt.Errorf("repo: %s: root <%s> has neither name= nor id=", origin, c.Kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, dup := r.files[ident]; dup && prev != origin {
		return fmt.Errorf("repo: identifier %q defined in both %s and %s", ident, prev, origin)
	}
	r.files[ident] = origin
	r.cache[ident] = c
	return nil
}

// Register adds an in-memory component to the repository (used by tests
// and by tools that synthesize models).
func (r *Repository) Register(c *model.Component) error {
	return r.register(c, "<memory>")
}

// Has reports whether the identifier is known (without fetching).
func (r *Repository) Has(ident string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.cache[ident]
	return ok
}

// Load returns the descriptor registered under ident, fetching it from
// a remote library if necessary. The returned component is shared and
// must be treated as read-only; clone before mutating.
func (r *Repository) Load(ident string) (*model.Component, error) {
	r.mu.Lock()
	if c, ok := r.cache[ident]; ok {
		r.stats.Loads++
		r.stats.CacheHits++
		r.mu.Unlock()
		return c, nil
	}
	remotes := append([]string(nil), r.remotes...)
	r.mu.Unlock()

	for _, base := range remotes {
		c, err := r.fetchRemote(base, ident)
		if err != nil {
			continue
		}
		if err := r.register(c, base+"/"+ident+".xpdl"); err != nil {
			return nil, err
		}
		r.mu.Lock()
		r.stats.Loads++
		r.mu.Unlock()
		return c, nil
	}
	return nil, fmt.Errorf("repo: model %q not found in search path or %d remote librar%s",
		ident, len(remotes), plural(len(remotes), "y", "ies"))
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func (r *Repository) fetchRemote(base, ident string) (*model.Component, error) {
	url := base + "/" + ident + ".xpdl"
	resp, err := r.client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("repo: GET %s: %s", url, resp.Status)
	}
	src, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	c, _, err := r.parser.ParseFile(url, src)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.stats.RemoteFetches++
	r.mu.Unlock()
	return c, nil
}

// LoadFile parses and registers a single descriptor file outside the
// indexed search paths (e.g. a top-level system model given on the
// command line).
func (r *Repository) LoadFile(path string) (*model.Component, error) {
	c, err := r.parseFile(path)
	if err != nil {
		return nil, err
	}
	if err := r.register(c, path); err != nil {
		return nil, err
	}
	return c, nil
}

// Idents returns all registered identifiers in sorted order.
func (r *Repository) Idents() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.cache))
	for k := range r.cache {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the repository counters.
func (r *Repository) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stats
}

// Prefetch loads the given identifiers concurrently with at most
// `workers` parallel fetches, returning the first error encountered.
// It is used by the processing tool to warm the cache for all submodels
// referenced by a system model before composition.
func (r *Repository) Prefetch(idents []string, workers int) error {
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan string)
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ident := range jobs {
				if _, err := r.Load(ident); err != nil {
					select {
					case errc <- err:
					default:
					}
				}
			}
		}()
	}
	for _, id := range idents {
		jobs <- id
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// ReferencedTypes returns the set of type= and extends= identifiers
// referenced anywhere in the component subtree, sorted. The processing
// tool uses this to discover which submodels a system model needs.
func ReferencedTypes(c *model.Component) []string {
	seen := map[string]bool{}
	c.Walk(func(x *model.Component) bool {
		if x.Type != "" {
			seen[x.Type] = true
		}
		for _, e := range x.Extends {
			seen[e] = true
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
