// Package repo implements the distributed XPDL model repository of
// Section III: descriptor modules (.xpdl files) are indexed by their
// unique meta-model name or instance id and retrieved either from a
// local model search path or from remote model libraries addressed by
// URL (the paper envisions hardware manufacturers hosting descriptor
// downloads; cmd/xpdlrepo provides such a server).
//
// The remote-fetch path is production-grade: per-remote retries with
// exponential backoff and jitter (honoring 429/5xx vs. other-4xx
// semantics and Retry-After), per-attempt timeouts, hedged failover
// across remotes, singleflight coalescing of concurrent loads of the
// same identifier, and optional ETag/If-None-Match revalidation backed
// by an on-disk descriptor cache. See FetchConfig.
//
// The repository is safe for concurrent use: the XPDL processing tool
// resolves submodel references in parallel while composing a system
// model, and the runtime query API may lazily load referenced
// descriptors from multiple goroutines.
package repo

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"xpdl/internal/model"
	"xpdl/internal/obs"
	"xpdl/internal/parser"
)

// Stats counts repository activity; useful for cache-effectiveness and
// robustness experiments (EXPERIMENTS.md E9).
type Stats struct {
	Loads         int // successful Load calls
	CacheHits     int // Loads served from the in-memory cache
	LocalParses   int // descriptor files parsed from disk
	RemoteFetches int // full descriptor bodies fetched over HTTP (200)
	Misses        int // Load calls that found the identifier nowhere
	Retries       int // retry attempts after retryable fetch failures
	Failures      int // individual fetch attempts that ended in error
	NotModified   int // 304 revalidations served from the disk cache
	Coalesced     int // Loads that shared another caller's in-flight fetch
	Invalidations int // Invalidate calls (cache drops for revalidation)
}

// Repository locates, parses and caches XPDL descriptor modules.
type Repository struct {
	parser   *parser.Parser
	client   *http.Client
	fetchCfg FetchConfig
	disk     *diskCache
	flight   flightGroup
	remotes  []string

	mu    sync.RWMutex
	files map[string]string           // ident -> file path (from Scan)
	cache map[string]*model.Component // ident -> parsed root
	stats Stats
}

// New creates a repository over the given local search paths. Call
// Scan to index them.
func New(searchPaths ...string) (*Repository, error) {
	r := &Repository{
		parser:   parser.New(),
		client:   &http.Client{},
		fetchCfg: DefaultFetchConfig().withDefaults(),
		files:    map[string]string{},
		cache:    map[string]*model.Component{},
	}
	if err := r.AddPaths(searchPaths...); err != nil {
		return nil, err
	}
	return r, nil
}

// SetFetchConfig replaces the remote-fetch policy. Zero-valued fields
// fall back to DefaultFetchConfig. Setting CacheDir enables the
// on-disk descriptor cache (the directory is created if needed). Must
// be called before the first Load that hits a remote.
func (r *Repository) SetFetchConfig(cfg FetchConfig) error {
	r.fetchCfg = cfg.withDefaults()
	r.disk = nil
	if cfg.CacheDir != "" {
		d, err := newDiskCache(cfg.CacheDir)
		if err != nil {
			return err
		}
		r.disk = d
	}
	return nil
}

// bump applies a counter update under the stats lock.
func (r *Repository) bump(f func(*Stats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}

// AddPaths indexes additional local search paths.
func (r *Repository) AddPaths(paths ...string) error {
	for _, p := range paths {
		if err := r.scanDir(p); err != nil {
			return err
		}
	}
	return nil
}

// AddRemote registers a remote model library base URL. Identifiers not
// found locally are fetched as <base>/<ident>.xpdl.
func (r *Repository) AddRemote(baseURL string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.remotes = append(r.remotes, strings.TrimRight(baseURL, "/"))
}

// scanDir walks one directory tree and indexes every .xpdl file by the
// name/id of its root element. Files are parsed eagerly so that index
// collisions (the paper requires repository-wide unique names) surface
// immediately.
func (r *Repository) scanDir(dir string) error {
	return filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".xpdl") {
			return nil
		}
		c, err := r.parseFile(path)
		if err != nil {
			return err
		}
		return r.register(c, path)
	})
}

func (r *Repository) parseFile(path string) (*model.Component, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, _, err := r.parser.ParseFile(path, src)
	if err != nil {
		return nil, err
	}
	r.bump(func(s *Stats) { s.LocalParses++ })
	return c, nil
}

func (r *Repository) register(c *model.Component, origin string) error {
	ident := c.Ident()
	if ident == "" {
		return fmt.Errorf("repo: %s: root <%s> has neither name= nor id=", origin, c.Kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, dup := r.files[ident]; dup && prev != origin {
		return fmt.Errorf("repo: identifier %q defined in both %s and %s", ident, prev, origin)
	}
	r.files[ident] = origin
	r.cache[ident] = c
	return nil
}

// Register adds an in-memory component to the repository (used by tests
// and by tools that synthesize models).
func (r *Repository) Register(c *model.Component) error {
	return r.register(c, "<memory>")
}

// memoryOrigin marks descriptors registered without a backing file or
// URL; Invalidate keeps them because they cannot be re-loaded.
const memoryOrigin = "<memory>"

// isRemoteOrigin reports whether an origin recorded in the file index
// is a remote library URL rather than a local path.
func isRemoteOrigin(origin string) bool {
	return strings.HasPrefix(origin, "http://") || strings.HasPrefix(origin, "https://")
}

// Invalidate drops the in-memory descriptor cache so subsequent Loads
// observe upstream changes — the revalidation hook behind long-running
// services (xpdld) that hot-swap resolved model snapshots. The file
// index is retained: local descriptors are lazily re-parsed from their
// recorded path on the next Load, and remote descriptors are re-fetched
// through the conditional-request path, where an unchanged body costs
// one 304 against the on-disk cache instead of a download. Descriptors
// registered via Register (no backing file) are kept as-is.
func (r *Repository) Invalidate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for ident, origin := range r.files {
		if origin == memoryOrigin {
			continue
		}
		delete(r.cache, ident)
		if isRemoteOrigin(origin) {
			// Forget the remote registration entirely: the next Load
			// runs the full hedged fetch (ETag revalidation included)
			// and re-registers whatever origin wins.
			delete(r.files, ident)
		}
	}
	r.stats.Invalidations++
}

// Has reports whether the identifier is known (without fetching).
func (r *Repository) Has(ident string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.cache[ident]
	return ok
}

// Load returns the descriptor registered under ident, fetching it from
// a remote library if necessary. The returned component is shared and
// must be treated as read-only; clone before mutating.
func (r *Repository) Load(ident string) (*model.Component, error) {
	return r.LoadContext(context.Background(), ident)
}

// LoadContext is Load with cancellation: an expired or canceled
// context aborts in-flight remote fetches (including their backoff
// sleeps) and returns the context error.
//
// Concurrent loads of one identifier are coalesced: exactly one fetch
// is issued and every waiter shares its outcome.
func (r *Repository) LoadContext(ctx context.Context, ident string) (*model.Component, error) {
	r.mu.Lock()
	if c, ok := r.cache[ident]; ok {
		r.stats.Loads++
		r.stats.CacheHits++
		r.mu.Unlock()
		return c, nil
	}
	remotes := append([]string(nil), r.remotes...)
	r.mu.Unlock()

	// A cache miss is real work (disk re-parse or remote fetch): record
	// it as a child span of whatever trace the caller is running under.
	spanCtx, sp := obs.StartSpan(ctx, "repo.load")
	sp.SetAttr("ident", ident)
	defer sp.Stop()

	v, err, shared := r.flight.do(ident, func() (any, error) {
		return r.fetchAndRegister(spanCtx, ident, remotes)
	})
	if err != nil {
		r.bump(func(s *Stats) { s.Misses++ })
		return nil, err
	}
	if shared {
		sp.Event("coalesced with another caller's in-flight fetch")
	}
	r.bump(func(s *Stats) {
		s.Loads++
		if shared {
			s.Coalesced++
		}
	})
	return v.(*model.Component), nil
}

// fetchAndRegister is the singleflight leader body: fetch ident from
// the remotes (hedged, with retries) and register the result.
func (r *Repository) fetchAndRegister(ctx context.Context, ident string, remotes []string) (*model.Component, error) {
	// Double-check the cache: a previous flight may have registered the
	// descriptor between this caller's cache miss and it becoming the
	// leader. Without this, back-to-back flights would fetch twice.
	r.mu.RLock()
	c, ok := r.cache[ident]
	r.mu.RUnlock()
	if ok {
		r.bump(func(s *Stats) { s.CacheHits++ })
		return c, nil
	}
	// An invalidated local descriptor keeps its file-index entry: re-parse
	// it from disk so Invalidate + Load observes on-disk edits without a
	// full directory re-scan.
	r.mu.RLock()
	origin, indexed := r.files[ident]
	r.mu.RUnlock()
	if indexed && !isRemoteOrigin(origin) && origin != memoryOrigin {
		obs.SpanFromContext(ctx).Event("re-parsing local descriptor %s", origin)
		c, err := r.parseFile(origin)
		if err != nil {
			return nil, err
		}
		if c.Ident() != ident {
			// The file was rewritten under a different root identifier;
			// the old name no longer resolves locally.
			r.mu.Lock()
			delete(r.files, ident)
			r.mu.Unlock()
			return nil, notFoundErr(ident, len(remotes), nil)
		}
		if err := r.register(c, origin); err != nil {
			return nil, err
		}
		return c, nil
	}
	if len(remotes) == 0 {
		return nil, notFoundErr(ident, 0, nil)
	}
	c, origin, err := r.fetchAny(ctx, ident, remotes)
	if err != nil {
		return nil, notFoundErr(ident, len(remotes), err)
	}
	if err := r.register(c, origin); err != nil {
		return nil, err
	}
	return c, nil
}

// notFoundErr builds the canonical "not found" error, wrapping the
// joined per-remote fetch errors when there are any.
func notFoundErr(ident string, nremotes int, cause error) error {
	msg := fmt.Sprintf("repo: model %q not found in search path or %d remote librar%s",
		ident, nremotes, plural(nremotes, "y", "ies"))
	if cause == nil {
		return errors.New(msg)
	}
	return fmt.Errorf("%s: %w", msg, cause)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// LoadFile parses and registers a single descriptor file outside the
// indexed search paths (e.g. a top-level system model given on the
// command line).
func (r *Repository) LoadFile(path string) (*model.Component, error) {
	c, err := r.parseFile(path)
	if err != nil {
		return nil, err
	}
	if err := r.register(c, path); err != nil {
		return nil, err
	}
	return c, nil
}

// Idents returns all registered identifiers in sorted order.
func (r *Repository) Idents() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.cache))
	for k := range r.cache {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the repository counters.
func (r *Repository) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stats
}

// PublishMetrics bridges the repository's Stats counters into an obs
// registry as scrape-time func metrics (nil selects obs.Default), so
// /metrics exposes live fetch/cache/robustness counts. Re-publishing
// from a newer Repository takes over the metric names.
func (r *Repository) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	bridge := func(name, help string, sel func(Stats) int) {
		reg.CounterFunc(name, help, func() float64 { return float64(sel(r.Stats())) })
	}
	bridge("xpdl_repo_loads_total", "Successful descriptor Load calls.",
		func(s Stats) int { return s.Loads })
	bridge("xpdl_repo_cache_hits_total", "Loads served from the in-memory cache.",
		func(s Stats) int { return s.CacheHits })
	bridge("xpdl_repo_local_parses_total", "Descriptor files parsed from disk.",
		func(s Stats) int { return s.LocalParses })
	bridge("xpdl_repo_remote_fetches_total", "Full descriptor bodies fetched over HTTP (200).",
		func(s Stats) int { return s.RemoteFetches })
	bridge("xpdl_repo_misses_total", "Load calls that found the identifier nowhere.",
		func(s Stats) int { return s.Misses })
	bridge("xpdl_repo_retries_total", "Retry attempts after retryable fetch failures.",
		func(s Stats) int { return s.Retries })
	bridge("xpdl_repo_failures_total", "Individual fetch attempts that ended in error.",
		func(s Stats) int { return s.Failures })
	bridge("xpdl_repo_not_modified_total", "304 revalidations served from the disk cache.",
		func(s Stats) int { return s.NotModified })
	bridge("xpdl_repo_coalesced_total", "Loads that shared another caller's in-flight fetch.",
		func(s Stats) int { return s.Coalesced })
	bridge("xpdl_repo_invalidations_total", "Invalidate calls (cache drops for revalidation).",
		func(s Stats) int { return s.Invalidations })
}

// Prefetch loads the given identifiers concurrently with at most
// `workers` parallel fetches. All load failures are aggregated into
// the returned error (errors.Join); each failure is also counted in
// Stats.Misses. It is used by the processing tool to warm the cache
// for all submodels referenced by a system model before composition.
func (r *Repository) Prefetch(idents []string, workers int) error {
	return r.PrefetchContext(context.Background(), idents, workers)
}

// PrefetchContext is Prefetch with cancellation and tracing: each
// worker loads through LoadContext, so cache misses appear as
// repo.load child spans of the context's active span (the toolchain's
// fetch phase under a traced request) and an expired context aborts
// the remaining fetches.
func (r *Repository) PrefetchContext(ctx context.Context, idents []string, workers int) error {
	if workers < 1 {
		workers = 1
	}
	type job struct {
		idx   int
		ident string
	}
	jobs := make(chan job)
	errs := make([]error, len(idents))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if _, err := r.LoadContext(ctx, j.ident); err != nil {
					errs[j.idx] = err
				}
			}
		}()
	}
	for i, id := range idents {
		jobs <- job{i, id}
	}
	close(jobs)
	wg.Wait()
	return errors.Join(errs...)
}

// ReferencedTypes returns the set of type= and extends= identifiers
// referenced anywhere in the component subtree, sorted. The processing
// tool uses this to discover which submodels a system model needs.
func ReferencedTypes(c *model.Component) []string {
	seen := map[string]bool{}
	c.Walk(func(x *model.Component) bool {
		if x.Type != "" {
			seen[x.Type] = true
		}
		for _, e := range x.Extends {
			seen[e] = true
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
