package config

import (
	"strings"
	"testing"

	"xpdl/internal/analysis"
	"xpdl/internal/model"
	"xpdl/internal/units"
)

const sample = `
<xpdltool>
  <filter drop_unknown="false">
    <drop attr="debug_note"/>
    <drop attr="vendor" kind="cpu"/>
  </filter>
  <synthesize target="static_power_total" source="static_power" agg="sum"
              kinds="system, node" unit_dim="power"/>
  <synthesize target="num_cores" source="core" agg="count" kinds="system"/>
  <analysis downgrade_bandwidth="false"/>
</xpdltool>`

func TestParse(t *testing.T) {
	cfg, err := Parse("tool.xml", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DropUnknown {
		t.Error("drop_unknown not honored")
	}
	if cfg.DowngradeBandwidth {
		t.Error("downgrade_bandwidth not honored")
	}
	if len(cfg.Drops) != 2 || cfg.Drops[1].Kind != "cpu" {
		t.Fatalf("drops = %+v", cfg.Drops)
	}
	if len(cfg.Rules) != 2 {
		t.Fatalf("rules = %+v", cfg.Rules)
	}
	r := cfg.Rules[0]
	if r.Target != "static_power_total" || r.Agg != analysis.Sum ||
		len(r.Kinds) != 2 || r.Dim != units.Power {
		t.Fatalf("rule = %+v", r)
	}
	if cfg.Rules[1].Agg != analysis.Count {
		t.Fatalf("count rule = %+v", cfg.Rules[1])
	}
}

func TestDefault(t *testing.T) {
	cfg := Default()
	if !cfg.DropUnknown || !cfg.DowngradeBandwidth || len(cfg.Rules) != 0 {
		t.Fatalf("default = %+v", cfg)
	}
	rules := cfg.FilterRules()
	if len(rules) != 1 {
		t.Fatalf("default filter rules = %d", len(rules))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<wrong/>`,
		`<xpdltool><bogus/></xpdltool>`,
		`<xpdltool><filter><drop/></filter></xpdltool>`,
		`<xpdltool><synthesize target="t"/></xpdltool>`,
		`<xpdltool><synthesize target="t" source="s" agg="median"/></xpdltool>`,
		`<xpdltool><synthesize target="t" source="s" unit_dim="parsecs"/></xpdltool>`,
		`<xpdltool`,
	}
	for _, src := range bad {
		if _, err := Parse("bad.xml", []byte(src)); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

func TestFilterRulesApply(t *testing.T) {
	cfg, err := Parse("tool.xml", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	sys := model.New("system")
	sys.ID = "s"
	cpu := model.New("cpu")
	cpu.ID = "c"
	cpu.SetAttr("vendor", model.Attr{Raw: "Intel"})
	cpu.SetAttr("debug_note", model.Attr{Raw: "x"})
	cpu.SetAttr("pending", model.Attr{Raw: "?", Unknown: true})
	mem := model.New("memory")
	mem.ID = "m"
	mem.SetAttr("vendor", model.Attr{Raw: "Micron"}) // kind-restricted drop spares it
	sys.Children = append(sys.Children, cpu, mem)

	removed := analysis.Filter(sys, cfg.FilterRules()...)
	if removed != 2 {
		t.Fatalf("removed = %d", removed)
	}
	if _, ok := cpu.Attr("vendor"); ok {
		t.Error("cpu vendor kept")
	}
	if _, ok := cpu.Attr("debug_note"); ok {
		t.Error("debug_note kept")
	}
	if _, ok := cpu.Attr("pending"); !ok {
		t.Error("? dropped despite drop_unknown=false")
	}
	if _, ok := mem.Attr("vendor"); !ok {
		t.Error("memory vendor dropped despite kind restriction")
	}
}

func TestSynthRulesApply(t *testing.T) {
	cfg, err := Parse("tool.xml", []byte(strings.Replace(sample,
		`kinds="system, node"`, `kinds="system"`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	sys := model.New("system")
	sys.ID = "s"
	n := model.New("node")
	n.SetQuantity("static_power", units.MustParse("30", "W"))
	n.Children = append(n.Children, model.New("core"), model.New("core"))
	sys.Children = append(sys.Children, n)
	analysis.Annotate(sys, cfg.Rules)
	q, ok := sys.QuantityAttr("static_power_total")
	if !ok || q.Value != 30 || q.Dim != units.Power {
		t.Fatalf("synthesized = %+v", q)
	}
	c, ok := sys.QuantityAttr("num_cores")
	if !ok || c.Value != 2 {
		t.Fatalf("num_cores = %+v", c)
	}
	// The node kind is not in the rule's kinds list now.
	if _, ok := n.QuantityAttr("static_power_total"); ok {
		t.Error("rule applied to excluded kind")
	}
}
