// Package config implements the XPDL processing tool's configuration:
// Section IV requires the tool to be configurable so that "the filtering
// rules for uninteresting values and static analysis / model
// elicitation rules can be tailored". A config file is itself a small
// XML document:
//
//	<xpdltool>
//	  <filter drop_unknown="true">
//	    <drop attr="debug_note"/>
//	    <drop attr="vendor" kind="cpu"/>
//	  </filter>
//	  <synthesize target="static_power_total" source="static_power"
//	              agg="sum" kinds="system, node" unit_dim="power"/>
//	  <analysis downgrade_bandwidth="true"/>
//	</xpdltool>
package config

import (
	"fmt"
	"strings"

	"xpdl/internal/analysis"
	"xpdl/internal/ast"
	"xpdl/internal/model"
	"xpdl/internal/units"
)

// Config is the parsed tool configuration.
type Config struct {
	// DropUnknown removes "?" attributes before emission (default true).
	DropUnknown bool
	// Drops are attribute-removal rules: attr name, optionally
	// restricted to one element kind.
	Drops []DropRule
	// Rules are the synthesized-attribute rules; empty selects
	// analysis.DefaultRules().
	Rules []analysis.SynthRule
	// DowngradeBandwidth toggles the interconnect analysis (default
	// true).
	DowngradeBandwidth bool
}

// DropRule removes one attribute, optionally only on one kind.
type DropRule struct {
	Attr string
	Kind string // empty = every kind
}

// Default returns the configuration the tool uses without a config
// file.
func Default() Config {
	return Config{DropUnknown: true, DowngradeBandwidth: true}
}

// Parse reads a tool configuration document.
func Parse(filename string, src []byte) (Config, error) {
	root, err := ast.Parse(filename, src)
	if err != nil {
		return Config{}, err
	}
	if root.Name != "xpdltool" {
		return Config{}, fmt.Errorf("config: root element is <%s>, want <xpdltool>", root.Name)
	}
	cfg := Default()
	for _, ch := range root.Children {
		switch ch.Name {
		case "filter":
			if v, ok := ch.Attr("drop_unknown"); ok {
				cfg.DropUnknown = strings.EqualFold(v, "true")
			}
			for _, d := range ch.ChildrenNamed("drop") {
				attr := d.AttrDefault("attr", "")
				if attr == "" {
					return Config{}, fmt.Errorf("config: %s: <drop> without attr", d.Pos)
				}
				cfg.Drops = append(cfg.Drops, DropRule{
					Attr: attr,
					Kind: d.AttrDefault("kind", ""),
				})
			}
		case "synthesize":
			rule, err := parseSynth(ch)
			if err != nil {
				return Config{}, err
			}
			cfg.Rules = append(cfg.Rules, rule)
		case "analysis":
			if v, ok := ch.Attr("downgrade_bandwidth"); ok {
				cfg.DowngradeBandwidth = strings.EqualFold(v, "true")
			}
		default:
			return Config{}, fmt.Errorf("config: %s: unknown element <%s>", ch.Pos, ch.Name)
		}
	}
	return cfg, nil
}

func parseSynth(e *ast.Element) (analysis.SynthRule, error) {
	rule := analysis.SynthRule{
		Target: e.AttrDefault("target", ""),
		Source: e.AttrDefault("source", ""),
	}
	if rule.Target == "" || rule.Source == "" {
		return rule, fmt.Errorf("config: %s: <synthesize> needs target and source", e.Pos)
	}
	switch agg := strings.ToLower(e.AttrDefault("agg", "sum")); agg {
	case "sum":
		rule.Agg = analysis.Sum
	case "min":
		rule.Agg = analysis.Min
	case "max":
		rule.Agg = analysis.Max
	case "count":
		rule.Agg = analysis.Count
	default:
		return rule, fmt.Errorf("config: %s: unknown agg %q", e.Pos, agg)
	}
	if kinds, ok := e.Attr("kinds"); ok {
		for _, k := range strings.Split(kinds, ",") {
			if k = strings.TrimSpace(k); k != "" {
				rule.Kinds = append(rule.Kinds, k)
			}
		}
	}
	switch dim := strings.ToLower(e.AttrDefault("unit_dim", "")); dim {
	case "", "none":
	case "power":
		rule.Dim = units.Power
	case "energy":
		rule.Dim = units.Energy
	case "size":
		rule.Dim = units.Size
	case "frequency":
		rule.Dim = units.Frequency
	case "time":
		rule.Dim = units.Time
	case "bandwidth":
		rule.Dim = units.Bandwidth
	default:
		return rule, fmt.Errorf("config: %s: unknown unit_dim %q", e.Pos, dim)
	}
	return rule, nil
}

// FilterRules converts the configuration into analysis filter rules.
func (c Config) FilterRules() []analysis.FilterRule {
	var rules []analysis.FilterRule
	if c.DropUnknown {
		rules = append(rules, analysis.DropUnknown)
	}
	for _, d := range c.Drops {
		d := d
		rules = append(rules, func(kind, attr string, _ model.Attr) bool {
			if d.Kind != "" && d.Kind != kind {
				return true
			}
			return attr != d.Attr
		})
	}
	return rules
}
