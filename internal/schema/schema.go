// Package schema defines the XPDL core metamodel: the set of element
// kinds, their typed attributes, and their legal containment — the
// machine-readable equivalent of the central xpdl.xsd schema the paper
// describes in Section IV, from which the C++ query API classes are
// generated.
//
// Following the paper's critique of PDL (Section II-C), properties that
// are structurally required are predefined, typed attributes so they can
// be checked statically; the <properties> element remains as the ad-hoc
// key-value escape hatch.
package schema

import (
	"fmt"
	"sort"

	"xpdl/internal/units"
)

// AttrType is the static type of an attribute value.
type AttrType int

// Attribute types.
const (
	TString AttrType = iota
	TInt
	TFloat
	TBool
	TQuantity // numeric value with a companion *_unit attribute
	TRef      // reference to another model element by name/id
	TExpr     // expression over params/consts
	TList     // comma-separated list (e.g. param range)
)

// String returns the lower-case name of the attribute type.
func (t AttrType) String() string {
	switch t {
	case TString:
		return "string"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	case TQuantity:
		return "quantity"
	case TRef:
		return "ref"
	case TExpr:
		return "expr"
	case TList:
		return "list"
	default:
		return fmt.Sprintf("AttrType(%d)", int(t))
	}
}

// AttrSpec describes one attribute of an element kind.
type AttrSpec struct {
	Name     string
	Type     AttrType
	Required bool
	// Dim is the expected physical dimension for TQuantity attributes.
	Dim units.Dimension
	// Doc is a one-line description used by the code generators.
	Doc string
}

// ElementKind describes one XPDL element type: its attributes and which
// child elements it may contain. An element kind can appear as a
// meta-model (identified by name=) and/or as a concrete instance
// (identified by id=); IsComponent kinds additionally accept type= and
// extends= references.
type ElementKind struct {
	Name     string
	Attrs    []AttrSpec
	Children []string
	// IsComponent marks hardware/software component kinds that
	// participate in the meta-model/instance and inheritance machinery.
	IsComponent bool
	// AllowAnyAttrs disables unknown-attribute diagnostics (used by
	// <property> and kinds that model open attribute sets).
	AllowAnyAttrs bool
	// Doc is a one-line description used by the code generators.
	Doc string
}

// Attr returns the spec for the named attribute, if declared.
func (k *ElementKind) Attr(name string) (AttrSpec, bool) {
	for _, a := range k.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return AttrSpec{}, false
}

// AllowsChild reports whether child elements of the given kind name may
// appear inside this kind.
func (k *ElementKind) AllowsChild(name string) bool {
	for _, c := range k.Children {
		if c == name {
			return true
		}
	}
	return false
}

// Schema is the full metamodel: a registry of element kinds.
type Schema struct {
	kinds map[string]*ElementKind
}

// Kind looks up an element kind by name.
func (s *Schema) Kind(name string) (*ElementKind, bool) {
	k, ok := s.kinds[name]
	return k, ok
}

// KindNames returns all element kind names in sorted order.
func (s *Schema) KindNames() []string {
	out := make([]string, 0, len(s.kinds))
	for n := range s.kinds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Kinds returns all element kinds sorted by name.
func (s *Schema) Kinds() []*ElementKind {
	names := s.KindNames()
	out := make([]*ElementKind, len(names))
	for i, n := range names {
		out[i] = s.kinds[n]
	}
	return out
}

// register adds a kind, panicking on duplicates (schema construction is
// static).
func (s *Schema) register(k *ElementKind) {
	if _, dup := s.kinds[k.Name]; dup {
		panic("schema: duplicate kind " + k.Name)
	}
	s.kinds[k.Name] = k
}

// identityAttrs are shared by every component kind: the meta/instance
// naming scheme of Section III-A (name for meta-models, id for concrete
// models, type for meta-model references, extends for inheritance).
func identityAttrs() []AttrSpec {
	return []AttrSpec{
		{Name: "name", Type: TString, Doc: "meta-model identifier, unique across the repository"},
		{Name: "id", Type: TString, Doc: "concrete model (instance) identifier"},
		{Name: "type", Type: TRef, Doc: "reference to the meta-model this element instantiates"},
		{Name: "extends", Type: TList, Doc: "comma-separated list of supertypes (multiple inheritance)"},
	}
}

func quantityAttr(name string, dim units.Dimension, doc string) []AttrSpec {
	return []AttrSpec{
		{Name: name, Type: TQuantity, Dim: dim, Doc: doc},
		{Name: units.UnitAttrFor(name), Type: TString, Doc: "unit for " + name},
	}
}

// Core builds the XPDL core metamodel. The attribute and containment
// sets cover every element used in the paper's Listings 1–15.
func Core() *Schema {
	s := &Schema{kinds: map[string]*ElementKind{}}

	componentChildren := []string{"group", "const", "param", "constraints", "properties"}

	add := func(k *ElementKind) *ElementKind {
		s.register(k)
		return k
	}

	// --- Structural / system kinds ---
	add(&ElementKind{
		Name:        "system",
		IsComponent: true,
		Doc:         "top-level model of a complete single- or multi-node computer system",
		Attrs:       identityAttrs(),
		Children: append([]string{
			"cluster", "node", "socket", "cpu", "device", "gpu", "memory",
			"interconnects", "software", "power_model",
		}, componentChildren...),
	})
	add(&ElementKind{
		Name:        "cluster",
		IsComponent: true,
		Doc:         "multi-node aggregate connected by an inter-node network",
		Attrs:       identityAttrs(),
		Children:    append([]string{"node", "interconnects"}, componentChildren...),
	})
	add(&ElementKind{
		Name:        "node",
		IsComponent: true,
		Doc:         "one compute node: sockets, memory, devices and intra-node interconnects",
		Attrs: append(identityAttrs(),
			quantityAttr("static_power", units.Power, "baseline node power including motherboard residual")...),
		Children: append([]string{
			"socket", "cpu", "memory", "device", "gpu", "interconnects", "software", "power_model",
		}, componentChildren...),
	})
	add(&ElementKind{
		Name:        "socket",
		IsComponent: true,
		Doc:         "physical processor socket",
		Attrs:       identityAttrs(),
		Children:    append([]string{"cpu"}, componentChildren...),
	})
	add(&ElementKind{
		Name: "group",
		Doc:  "grouping construct; with quantity it denotes a homogeneous replicated group",
		Attrs: []AttrSpec{
			{Name: "name", Type: TString, Doc: "group meta name"},
			{Name: "id", Type: TString, Doc: "group instance identifier"},
			{Name: "prefix", Type: TString, Doc: "identifier prefix for auto-named members (prefix0..prefixN-1)"},
			{Name: "quantity", Type: TExpr, Doc: "member count; may reference params (e.g. num_SM)"},
		},
		Children: []string{
			"group", "core", "cpu", "cache", "memory", "socket", "node", "device", "gpu",
			"power_domain", "const", "param", "constraints", "properties",
		},
	})

	// --- Processing kinds ---
	add(&ElementKind{
		Name:        "cpu",
		IsComponent: true,
		Doc:         "CPU package: cores, caches and an optional power model",
		Attrs: append(append(identityAttrs(),
			AttrSpec{Name: "role", Type: TString, Doc: "optional control role (master/worker/hybrid), kept from PDL as a secondary aspect"},
			AttrSpec{Name: "vendor", Type: TString, Doc: "manufacturer"},
			AttrSpec{Name: "architecture", Type: TString, Doc: "ISA family, e.g. x86_64, sparc_v8"},
		), append(
			quantityAttr("frequency", units.Frequency, "nominal clock frequency"),
			quantityAttr("static_power", units.Power, "idle package power")...)...),
		Children: append([]string{
			"core", "cache", "memory", "power_model", "power_domains", "instructions",
		}, componentChildren...),
	})
	add(&ElementKind{
		Name:        "core",
		IsComponent: true,
		Doc:         "one hardware core",
		Attrs: append(append(identityAttrs(),
			AttrSpec{Name: "endian", Type: TString, Doc: "byte order: LE or BE"},
			AttrSpec{Name: "role", Type: TString, Doc: "optional control role"},
			AttrSpec{Name: "architecture", Type: TString, Doc: "ISA family, e.g. sparc_v8, shave_vliw"},
		), quantityAttr("frequency", units.Frequency, "core clock frequency")...),
		Children: append([]string{"cache"}, componentChildren...),
	})
	add(&ElementKind{
		Name:        "cache",
		IsComponent: true,
		Doc:         "cache memory; sharing is implied by its scope in the model tree",
		Attrs: append(append(identityAttrs(),
			AttrSpec{Name: "level", Type: TInt, Doc: "cache level (1, 2, 3, ...)"},
			AttrSpec{Name: "sets", Type: TInt, Doc: "associativity sets"},
			AttrSpec{Name: "line_size", Type: TInt, Doc: "cache line size in bytes"},
			AttrSpec{Name: "replacement", Type: TString, Doc: "replacement policy, e.g. LRU"},
			AttrSpec{Name: "write_policy", Type: TString, Doc: "writethrough or copyback"},
		), quantityAttr("size", units.Size, "capacity")...),
		Children: componentChildren,
	})
	add(&ElementKind{
		Name:        "memory",
		IsComponent: true,
		Doc:         "memory module or explicitly addressed memory space",
		Attrs: append(append(identityAttrs(),
			AttrSpec{Name: "slices", Type: TInt, Doc: "number of independently accessible slices (e.g. Myriad CMX)"},
			AttrSpec{Name: "endian", Type: TString, Doc: "byte order: LE or BE"},
		), append(
			quantityAttr("size", units.Size, "capacity"),
			append(quantityAttr("static_power", units.Power, "idle power"),
				quantityAttr("max_bandwidth", units.Bandwidth, "peak bandwidth")...)...)...),
		Children: componentChildren,
	})

	// --- Devices / accelerators ---
	deviceAttrs := append(append(identityAttrs(),
		AttrSpec{Name: "role", Type: TString, Doc: "optional control role"},
		AttrSpec{Name: "compute_capability", Type: TFloat, Doc: "CUDA compute capability for Nvidia devices"},
	), quantityAttr("static_power", units.Power, "idle device power")...)
	add(&ElementKind{
		Name:        "device",
		IsComponent: true,
		Doc:         "accelerator device (GPU, DSP board, ...) with own memory",
		Attrs:       deviceAttrs,
		Children: append([]string{
			"socket", "cpu", "core", "cache", "memory", "gpu", "interconnects",
			"power_model", "power_domains", "programming_model", "instructions",
		}, componentChildren...),
	})
	add(&ElementKind{
		Name:        "gpu",
		IsComponent: true,
		Doc:         "GPU device; alias kind for device with GPU-specific conventions",
		Attrs:       deviceAttrs,
		Children: append([]string{
			"core", "cache", "memory", "power_model", "power_domains", "programming_model",
		}, componentChildren...),
	})
	add(&ElementKind{
		Name: "programming_model",
		Doc:  "programming models supported by the enclosing device",
		Attrs: []AttrSpec{
			{Name: "type", Type: TList, Required: true, Doc: "comma-separated model names, e.g. cuda6.0, opencl"},
		},
	})

	// --- Interconnects ---
	add(&ElementKind{
		Name:  "interconnects",
		Doc:   "container for interconnect instances of the enclosing scope",
		Attrs: []AttrSpec{},
		Children: []string{
			"interconnect",
		},
	})
	add(&ElementKind{
		Name:        "interconnect",
		IsComponent: true,
		Doc:         "an interconnect technology (meta) or a concrete link (instance with head/tail)",
		Attrs: append(append(identityAttrs(),
			AttrSpec{Name: "head", Type: TRef, Doc: "source endpoint id for a directed link"},
			AttrSpec{Name: "tail", Type: TRef, Doc: "target endpoint id for a directed link"},
		), append(
			quantityAttr("max_bandwidth", units.Bandwidth, "peak bandwidth when not modeled per channel"),
			quantityAttr("latency", units.Time, "per-message latency when not modeled per channel")...)...),
		Children: append([]string{"channel"}, componentChildren...),
	})
	add(&ElementKind{
		Name: "channel",
		Doc:  "one directed channel of an interconnect (e.g. PCIe up_link/down_link)",
		Attrs: append([]AttrSpec{
			{Name: "name", Type: TString, Doc: "channel name"},
		}, append(
			quantityAttr("max_bandwidth", units.Bandwidth, "peak channel bandwidth"),
			append(quantityAttr("time_offset_per_message", units.Time, "per-message time offset"),
				append(quantityAttr("energy_per_byte", units.Energy, "transfer energy per byte"),
					quantityAttr("energy_offset_per_message", units.Energy, "per-message energy offset")...)...)...)...),
	})

	// --- Software ---
	add(&ElementKind{
		Name:     "software",
		Doc:      "installed system software of the enclosing system/node",
		Children: []string{"hostOS", "installed", "properties"},
	})
	add(&ElementKind{
		Name:        "hostOS",
		IsComponent: true,
		Doc:         "host operating system",
		Attrs: append(identityAttrs(),
			AttrSpec{Name: "kernel", Type: TString, Doc: "kernel version"}),
	})
	add(&ElementKind{
		Name:        "installed",
		IsComponent: true,
		Doc:         "an installed software package (library, runtime, compiler)",
		Attrs: append(identityAttrs(),
			AttrSpec{Name: "path", Type: TString, Doc: "installation path"},
			AttrSpec{Name: "version", Type: TString, Doc: "package version"}),
	})

	// --- Properties escape hatch ---
	add(&ElementKind{
		Name:     "properties",
		Doc:      "ad-hoc key-value property container (the PDL-inherited escape mechanism)",
		Children: []string{"property"},
	})
	add(&ElementKind{
		Name:          "property",
		AllowAnyAttrs: true,
		Doc:           "one free-form property; name is required, all other attributes are free-form",
		Attrs: []AttrSpec{
			{Name: "name", Type: TString, Required: true, Doc: "property key"},
			{Name: "value", Type: TString, Doc: "property value"},
		},
	})

	// --- Parameters, constants, constraints (Listing 8) ---
	add(&ElementKind{
		Name: "const",
		Doc:  "named constant of a meta-model",
		Attrs: append([]AttrSpec{
			{Name: "name", Type: TString, Required: true, Doc: "constant name"},
			{Name: "type", Type: TString, Doc: "value type, e.g. msize, integer, frequency"},
			{Name: "value", Type: TString, Doc: "constant value when not carried by a metric attribute"},
		}, append(quantityAttr("size", units.Size, "size-typed constant value"),
			quantityAttr("frequency", units.Frequency, "frequency-typed constant value")...)...),
	})
	add(&ElementKind{
		Name: "param",
		Doc:  "formal parameter of a meta-model, possibly user-configurable",
		Attrs: append([]AttrSpec{
			{Name: "name", Type: TString, Required: true, Doc: "parameter name"},
			{Name: "type", Type: TString, Doc: "value type, e.g. msize, integer, frequency"},
			{Name: "configurable", Type: TBool, Doc: "whether software may reconfigure the parameter"},
			{Name: "range", Type: TList, Doc: "comma-separated legal values"},
			{Name: "value", Type: TString, Doc: "bound value (instances and subtype bindings)"},
		}, append(quantityAttr("size", units.Size, "size-typed binding"),
			quantityAttr("frequency", units.Frequency, "frequency-typed binding")...)...),
	})
	add(&ElementKind{
		Name:     "constraints",
		Doc:      "container for constraints over params/consts",
		Children: []string{"constraint"},
	})
	add(&ElementKind{
		Name: "constraint",
		Doc:  "a boolean expression that must hold for every concrete configuration",
		Attrs: []AttrSpec{
			{Name: "expr", Type: TExpr, Required: true, Doc: "constraint expression"},
		},
	})

	// --- Power modeling (Listings 12–13) ---
	add(&ElementKind{
		Name:        "power_model",
		IsComponent: true,
		Doc:         "power model reference: domains, state machines and microbenchmarks",
		Attrs:       identityAttrs(),
		Children:    []string{"power_domains", "power_state_machine", "instructions", "microbenchmarks", "properties"},
	})
	add(&ElementKind{
		Name:        "power_domains",
		IsComponent: true,
		Doc:         "set of power domains (power islands) of a component",
		Attrs:       identityAttrs(),
		Children:    []string{"power_domain", "group"},
	})
	add(&ElementKind{
		Name: "power_domain",
		Doc:  "group of components switched together in power state transitions",
		Attrs: []AttrSpec{
			{Name: "name", Type: TString, Required: true, Doc: "domain name"},
			{Name: "enableSwitchOff", Type: TBool, Doc: "false marks the main domain that cannot be switched off"},
			{Name: "switchoffCondition", Type: TString, Doc: "condition of the form '<group> off' gating switch-off"},
		},
		Children: []string{"core", "cpu", "memory", "cache", "device", "gpu"},
	})
	add(&ElementKind{
		Name:        "power_state_machine",
		IsComponent: true,
		Doc:         "finite state machine over DVFS/sleep states of a power domain",
		Attrs: append(identityAttrs(),
			AttrSpec{Name: "power_domain", Type: TRef, Doc: "the domain this PSM controls"}),
		Children: []string{"power_states", "transitions"},
	})
	add(&ElementKind{
		Name:     "power_states",
		Doc:      "container for the PSM's states",
		Children: []string{"power_state"},
	})
	add(&ElementKind{
		Name: "power_state",
		Doc:  "one P/C state with its frequency and static power level",
		Attrs: append([]AttrSpec{
			{Name: "name", Type: TString, Required: true, Doc: "state name, e.g. P1"},
		}, append(quantityAttr("frequency", units.Frequency, "operating frequency in this state"),
			quantityAttr("power", units.Power, "static power drawn in this state")...)...),
	})
	add(&ElementKind{
		Name:     "transitions",
		Doc:      "container for the PSM's transitions",
		Children: []string{"transition"},
	})
	add(&ElementKind{
		Name: "transition",
		Doc:  "a programmer-initiated state switch with its overhead costs",
		Attrs: append([]AttrSpec{
			{Name: "head", Type: TRef, Required: true, Doc: "source state"},
			{Name: "tail", Type: TRef, Required: true, Doc: "target state"},
		}, append(quantityAttr("time", units.Time, "switching time overhead"),
			quantityAttr("energy", units.Energy, "switching energy overhead")...)...),
	})

	// --- Instruction energies and microbenchmarks (Listings 14–15) ---
	add(&ElementKind{
		Name:        "instructions",
		IsComponent: true,
		Doc:         "instruction set with per-instruction dynamic energy cost",
		Attrs: append(identityAttrs(),
			AttrSpec{Name: "mb", Type: TRef, Doc: "default microbenchmark suite for this ISA"}),
		Children: []string{"inst"},
	})
	add(&ElementKind{
		Name: "inst",
		Doc:  "one instruction; energy '?' means 'derive by microbenchmarking at deployment'",
		Attrs: append([]AttrSpec{
			{Name: "name", Type: TString, Required: true, Doc: "instruction mnemonic"},
			{Name: "mb", Type: TRef, Doc: "microbenchmark deriving this instruction's energy"},
		}, quantityAttr("energy", units.Energy, "dynamic energy per executed instruction; '?' if unknown")...),
		Children: []string{"data"},
	})
	add(&ElementKind{
		Name: "data",
		Doc:  "one (frequency, energy) sample of an instruction's energy function",
		Attrs: append(quantityAttr("frequency", units.Frequency, "sample frequency"),
			quantityAttr("energy", units.Energy, "sample energy")...),
	})
	add(&ElementKind{
		Name:        "microbenchmarks",
		IsComponent: true,
		Doc:         "microbenchmark suite with deployment information",
		Attrs: append(identityAttrs(),
			AttrSpec{Name: "instruction_set", Type: TRef, Doc: "the ISA this suite calibrates"},
			AttrSpec{Name: "path", Type: TString, Doc: "directory holding the benchmark sources"},
			AttrSpec{Name: "command", Type: TString, Doc: "script that builds and runs the suite"}),
		Children: []string{"microbenchmark"},
	})
	add(&ElementKind{
		Name: "microbenchmark",
		Doc:  "one microbenchmark: source file and build flags",
		Attrs: []AttrSpec{
			{Name: "id", Type: TString, Required: true, Doc: "benchmark identifier referenced from inst/@mb"},
			{Name: "type", Type: TString, Doc: "instruction or metric the benchmark measures"},
			{Name: "file", Type: TString, Doc: "source file"},
			{Name: "cflags", Type: TString, Doc: "compiler flags"},
			{Name: "lflags", Type: TString, Doc: "linker flags"},
		},
	})

	return s
}
