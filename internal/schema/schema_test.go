package schema

import (
	"strings"
	"testing"

	"xpdl/internal/ast"
	"xpdl/internal/units"
)

func parse(t *testing.T, src string) *ast.Element {
	t.Helper()
	e, err := ast.Parse("test.xpdl", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return e
}

func TestCoreKindsPresent(t *testing.T) {
	s := Core()
	wanted := []string{
		"system", "cluster", "node", "socket", "group", "cpu", "core", "cache",
		"memory", "device", "gpu", "interconnects", "interconnect", "channel",
		"software", "hostOS", "installed", "properties", "property",
		"const", "param", "constraints", "constraint",
		"power_model", "power_domains", "power_domain",
		"power_state_machine", "power_states", "power_state", "transitions", "transition",
		"instructions", "inst", "data", "microbenchmarks", "microbenchmark",
		"programming_model",
	}
	for _, k := range wanted {
		if _, ok := s.Kind(k); !ok {
			t.Errorf("kind %q missing", k)
		}
	}
	if len(s.KindNames()) != len(wanted) {
		t.Errorf("kind count = %d, want %d", len(s.KindNames()), len(wanted))
	}
	if len(s.Kinds()) != len(wanted) {
		t.Errorf("Kinds() length mismatch")
	}
}

func TestKindLookupHelpers(t *testing.T) {
	s := Core()
	cpu, _ := s.Kind("cpu")
	if spec, ok := cpu.Attr("frequency"); !ok || spec.Type != TQuantity || spec.Dim != units.Frequency {
		t.Errorf("cpu frequency attr = %+v, %v", spec, ok)
	}
	if _, ok := cpu.Attr("nonexistent"); ok {
		t.Error("nonexistent attr found")
	}
	if !cpu.AllowsChild("core") || cpu.AllowsChild("cluster") {
		t.Error("cpu containment wrong")
	}
	names := s.KindNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("KindNames not sorted")
		}
	}
}

func TestValidateListing1Clean(t *testing.T) {
	s := Core()
	root := parse(t, `
<cpu name="Intel_Xeon_E5_2630L">
  <group prefix="core_group" quantity="2">
    <group prefix="core" quantity="2">
      <core frequency="2" frequency_unit="GHz" />
      <cache name="L1" size="32" unit="KiB" />
    </group>
    <cache name="L2" size="256" unit="KiB" />
  </group>
  <cache name="L3" size="15" unit="MiB" />
  <power_model type="power_model_E5_2630L" />
</cpu>`)
	ds := s.Validate(root)
	if len(ds) != 0 {
		t.Fatalf("expected clean validation, got:\n%s", ds)
	}
}

func TestValidateUnknownElement(t *testing.T) {
	s := Core()
	ds := s.Validate(parse(t, `<bogus_thing />`))
	if !ds.HasErrors() {
		t.Fatal("unknown element not flagged")
	}
	if !strings.Contains(ds.String(), "unknown element") {
		t.Fatalf("diagnostic text: %s", ds)
	}
}

func TestValidateContainment(t *testing.T) {
	s := Core()
	// cluster inside cache is illegal.
	ds := s.Validate(parse(t, `<cache name="x" size="1" unit="KiB"><constraints/></cache>`))
	if ds.HasErrors() {
		t.Fatalf("constraints inside cache should be fine: %s", ds)
	}
	ds = s.Validate(parse(t, `<cache name="x"><node/></cache>`))
	if !ds.HasErrors() {
		t.Fatal("node inside cache not flagged")
	}
}

func TestValidateAttrTypes(t *testing.T) {
	s := Core()
	cases := []struct {
		src     string
		wantErr bool
		label   string
	}{
		{`<cache name="c" sets="2" size="128" unit="KiB"/>`, false, "good ints"},
		{`<cache name="c" sets="two" size="128" unit="KiB"/>`, true, "non-int sets"},
		{`<cache name="c" size="big!" unit="KiB"/>`, true, "non-numeric non-identifier quantity with unit"},
		{`<cache name="c" size="128" unit="parsecs"/>`, true, "bad unit"},
		{`<cache name="c" size="128" unit="GHz"/>`, true, "wrong dimension"},
		{`<cache name="c" size="L1size" unit="KB"/>`, false, "param reference as value"},
		{`<inst name="fmul" energy="?" energy_unit="pJ"/>`, false, "? placeholder"},
		{`<power_domain name="d" enableSwitchOff="maybe"/>`, true, "bad bool"},
		{`<power_domain name="d" enableSwitchOff="false"/>`, false, "good bool"},
		{`<constraint expr="a + == b"/>`, true, "bad expr"},
		{`<constraint expr="a + 1 == b"/>`, false, "good expr"},
		{`<device name="d" compute_capability="3.5"/>`, false, "float ok"},
		{`<device name="d" compute_capability="three"/>`, true, "bad float"},
		{`<cache name="c" size="$$" />`, true, "garbage quantity no unit"},
	}
	for _, c := range cases {
		ds := s.Validate(parse(t, c.src))
		if got := ds.HasErrors(); got != c.wantErr {
			t.Errorf("%s: HasErrors = %v, want %v (%s)", c.label, got, c.wantErr, ds)
		}
	}
}

func TestValidateRequiredAttrs(t *testing.T) {
	s := Core()
	ds := s.Validate(parse(t, `<constraint/>`))
	if !ds.HasErrors() || !strings.Contains(ds.String(), "missing required attribute") {
		t.Fatalf("missing expr not flagged: %s", ds)
	}
	ds = s.Validate(parse(t, `<property/>`))
	if !ds.HasErrors() {
		t.Fatal("property without name not flagged")
	}
}

func TestValidateUnknownAttrWarns(t *testing.T) {
	s := Core()
	ds := s.Validate(parse(t, `<cache name="c" size="1" unit="KiB" zzz="1"/>`))
	if ds.HasErrors() {
		t.Fatalf("unknown attribute should warn, not error: %s", ds)
	}
	if len(ds) != 1 || ds[0].Severity != Warning {
		t.Fatalf("want 1 warning, got: %s", ds)
	}
	// property accepts arbitrary attributes.
	ds = s.Validate(parse(t, `<property name="ExternalPowerMeter" type="x" command="myscript.sh"/>`))
	if len(ds) != 0 {
		t.Fatalf("property free-form attrs flagged: %s", ds)
	}
}

func TestValidateMetaVsInstanceWarning(t *testing.T) {
	s := Core()
	ds := s.Validate(parse(t, `<cpu name="A" id="a1"/>`))
	if ds.HasErrors() {
		t.Fatalf("name+id should warn only: %s", ds)
	}
	found := false
	for _, d := range ds {
		if strings.Contains(d.Msg, "both name=") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected meta/instance warning, got: %s", ds)
	}
}

func TestDiagnosticsHelpers(t *testing.T) {
	ds := Diagnostics{
		{Warning, ast.Pos{File: "f", Line: 1, Column: 1}, "w"},
		{Error, ast.Pos{File: "f", Line: 2, Column: 1}, "e"},
	}
	if !ds.HasErrors() {
		t.Fatal("HasErrors false")
	}
	if len(ds.Errors()) != 1 || ds.Errors()[0].Msg != "e" {
		t.Fatal("Errors() wrong")
	}
	if Info.String() != "info" || Warning.String() != "warning" || Error.String() != "error" {
		t.Fatal("severity strings wrong")
	}
	if !strings.Contains(ds[1].Error(), "f:2:1: error: e") {
		t.Fatalf("diag format: %s", ds[1].Error())
	}
}

func TestAttrTypeString(t *testing.T) {
	for at, want := range map[AttrType]string{
		TString: "string", TInt: "int", TFloat: "float", TBool: "bool",
		TQuantity: "quantity", TRef: "ref", TExpr: "expr", TList: "list",
	} {
		if at.String() != want {
			t.Errorf("AttrType %d string = %q, want %q", at, at.String(), want)
		}
	}
	if AttrType(99).String() == "" {
		t.Error("unknown AttrType should still render")
	}
}

func TestValidatePSMListing13(t *testing.T) {
	s := Core()
	root := parse(t, `
<power_state_machine name="power_state_machine1" power_domain="xyCPU_core_pd">
  <power_states>
    <power_state name="P1" frequency="1.2" frequency_unit="GHz" power="20" power_unit="W" />
    <power_state name="P2" frequency="1.6" frequency_unit="GHz" power="25" power_unit="W" />
    <power_state name="P3" frequency="2.0" frequency_unit="GHz" power="33" power_unit="W" />
  </power_states>
  <transitions>
    <transition head="P2" tail="P1" time="1" time_unit="us" energy="2" energy_unit="nJ"/>
    <transition head="P3" tail="P2" time="1" time_unit="us" energy="2" energy_unit="nJ"/>
    <transition head="P1" tail="P3" time="2" time_unit="us" energy="5" energy_unit="nJ"/>
  </transitions>
</power_state_machine>`)
	ds := s.Validate(root)
	if len(ds) != 0 {
		t.Fatalf("PSM validation: %s", ds)
	}
}

func TestValidateMicrobenchListing15(t *testing.T) {
	s := Core()
	root := parse(t, `
<microbenchmarks id="mb_x86_base_1" instruction_set="x86_base_isa" path="/usr/local/micr/src" command="mbscript.sh">
  <microbenchmark id="fa1" type="fadd" file="fadd.c" cflags="-O0" lflags="-lm" />
  <microbenchmark id="mo1" type="mov" file="mov.c" cflags="-O0" lflags="-lm" />
</microbenchmarks>`)
	ds := s.Validate(root)
	if len(ds) != 0 {
		t.Fatalf("microbenchmarks validation: %s", ds)
	}
}

// TestSchemaDocumentation: the generators derive doc comments from the
// schema, so every kind and attribute must carry one.
func TestSchemaDocumentation(t *testing.T) {
	s := Core()
	for _, k := range s.Kinds() {
		if k.Doc == "" {
			t.Errorf("kind %s has no doc", k.Name)
		}
		for _, a := range k.Attrs {
			if a.Doc == "" {
				t.Errorf("attribute %s.%s has no doc", k.Name, a.Name)
			}
		}
	}
}

// TestQuantityAttrsHaveUnitCompanions: the metric_unit convention must
// be followed by the schema itself.
func TestQuantityAttrsHaveUnitCompanions(t *testing.T) {
	s := Core()
	for _, k := range s.Kinds() {
		for _, a := range k.Attrs {
			if a.Type != TQuantity {
				continue
			}
			unitAttr := units.UnitAttrFor(a.Name)
			if _, ok := k.Attr(unitAttr); !ok {
				t.Errorf("%s.%s lacks its %s companion", k.Name, a.Name, unitAttr)
			}
		}
	}
}

// TestContainmentReferencesExist: every child named in a containment
// list must itself be a registered kind.
func TestContainmentReferencesExist(t *testing.T) {
	s := Core()
	for _, k := range s.Kinds() {
		for _, c := range k.Children {
			if _, ok := s.Kind(c); !ok {
				t.Errorf("%s allows unknown child %q", k.Name, c)
			}
		}
	}
}
