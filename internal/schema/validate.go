package schema

import (
	"fmt"
	"strconv"
	"strings"

	"xpdl/internal/ast"
	"xpdl/internal/expr"
	"xpdl/internal/units"
)

// Severity grades a diagnostic.
type Severity int

// Diagnostic severities.
const (
	Info Severity = iota
	Warning
	Error
)

// String returns "info", "warning" or "error".
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	default:
		return "error"
	}
}

// Diagnostic is one validation finding with its source position.
type Diagnostic struct {
	Severity Severity
	Pos      ast.Pos
	Msg      string
}

// Error renders the diagnostic as "pos: severity: msg".
func (d Diagnostic) Error() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Severity, d.Msg)
}

// Diagnostics is a list of findings.
type Diagnostics []Diagnostic

// HasErrors reports whether any diagnostic has Error severity.
func (ds Diagnostics) HasErrors() bool {
	for _, d := range ds {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Errors returns only the Error-severity findings.
func (ds Diagnostics) Errors() Diagnostics {
	var out Diagnostics
	for _, d := range ds {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// String joins all diagnostics, one per line.
func (ds Diagnostics) String() string {
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = d.Error()
	}
	return strings.Join(parts, "\n")
}

// Unknown is the placeholder value marking attributes to be derived by
// microbenchmarking at deployment time (Listing 3, Listing 14).
const Unknown = "?"

// Validate checks one element tree against the metamodel and returns
// all findings. It checks element kinds, containment, attribute
// presence, and attribute value syntax (including units for TQuantity
// attributes and compilability for TExpr attributes).
func (s *Schema) Validate(root *ast.Element) Diagnostics {
	var ds Diagnostics
	s.validateElement(root, nil, &ds)
	return ds
}

func (s *Schema) validateElement(e *ast.Element, parentKind *ElementKind, ds *Diagnostics) {
	kind, known := s.Kind(e.Name)
	if !known {
		*ds = append(*ds, Diagnostic{Error, e.Pos, fmt.Sprintf("unknown element <%s>", e.Name)})
		return
	}
	if parentKind != nil && !parentKind.AllowsChild(e.Name) {
		*ds = append(*ds, Diagnostic{Error, e.Pos,
			fmt.Sprintf("element <%s> not allowed inside <%s>", e.Name, parentKind.Name)})
	}

	// Attribute checks.
	seen := map[string]bool{}
	for _, a := range e.Attrs {
		seen[a.Name] = true
		spec, declared := kind.Attr(a.Name)
		if !declared {
			if !kind.AllowAnyAttrs && !isUnitCompanion(kind, a.Name) {
				*ds = append(*ds, Diagnostic{Warning, e.Pos,
					fmt.Sprintf("unknown attribute %q on <%s>", a.Name, e.Name)})
			}
			continue
		}
		s.checkAttrValue(e, kind, spec, a.Value, ds)
	}
	for _, spec := range kind.Attrs {
		if spec.Required && !seen[spec.Name] {
			*ds = append(*ds, Diagnostic{Error, e.Pos,
				fmt.Sprintf("missing required attribute %q on <%s>", spec.Name, e.Name)})
		}
	}

	// Meta-vs-instance discipline for component kinds: warn if an
	// element declares both a meta name and an instance id.
	if kind.IsComponent {
		_, hasName := e.Attr("name")
		_, hasID := e.Attr("id")
		if hasName && hasID {
			*ds = append(*ds, Diagnostic{Warning, e.Pos,
				fmt.Sprintf("<%s> declares both name= (meta-model) and id= (instance)", e.Name)})
		}
	}

	for _, c := range e.Children {
		s.validateElement(c, kind, ds)
	}
}

// isUnitCompanion reports whether attr is the *_unit companion of a
// declared quantity attribute — those are declared explicitly in the
// schema, but a few models carry units for free-form metrics too, which
// we accept silently when the base metric is declared.
func isUnitCompanion(kind *ElementKind, attr string) bool {
	base, ok := strings.CutSuffix(attr, "_unit")
	if !ok {
		return false
	}
	_, declared := kind.Attr(base)
	return declared
}

func (s *Schema) checkAttrValue(e *ast.Element, kind *ElementKind, spec AttrSpec, val string, ds *Diagnostics) {
	switch spec.Type {
	case TInt:
		if val == Unknown {
			return
		}
		if _, err := strconv.Atoi(strings.TrimSpace(val)); err != nil {
			*ds = append(*ds, Diagnostic{Error, e.Pos,
				fmt.Sprintf("attribute %s=%q on <%s> is not an integer", spec.Name, val, e.Name)})
		}
	case TFloat:
		if val == Unknown {
			return
		}
		if _, err := strconv.ParseFloat(strings.TrimSpace(val), 64); err != nil {
			*ds = append(*ds, Diagnostic{Error, e.Pos,
				fmt.Sprintf("attribute %s=%q on <%s> is not a number", spec.Name, val, e.Name)})
		}
	case TBool:
		lv := strings.ToLower(strings.TrimSpace(val))
		if lv != "true" && lv != "false" {
			*ds = append(*ds, Diagnostic{Error, e.Pos,
				fmt.Sprintf("attribute %s=%q on <%s> is not a boolean", spec.Name, val, e.Name)})
		}
	case TQuantity:
		s.checkQuantity(e, spec, val, ds)
	case TExpr:
		if val == Unknown {
			return
		}
		if _, err := expr.Compile(val); err != nil {
			*ds = append(*ds, Diagnostic{Error, e.Pos,
				fmt.Sprintf("attribute %s on <%s>: %v", spec.Name, e.Name, err)})
		}
	case TString, TRef, TList:
		if strings.TrimSpace(val) == "" && spec.Required {
			*ds = append(*ds, Diagnostic{Error, e.Pos,
				fmt.Sprintf("attribute %s on <%s> is empty", spec.Name, e.Name)})
		}
	}
}

func (s *Schema) checkQuantity(e *ast.Element, spec AttrSpec, val string, ds *Diagnostics) {
	if val == Unknown {
		// Placeholder to be filled by microbenchmarking.
		return
	}
	unitAttr := units.UnitAttrFor(spec.Name)
	unitVal, hasUnit := e.Attr(unitAttr)
	if !hasUnit {
		// A bare number is accepted (it may be a param reference or a
		// dimensionless count), but if it is not numeric it must be an
		// identifier usable as a param reference.
		if _, err := strconv.ParseFloat(strings.TrimSpace(val), 64); err != nil {
			if !isIdentifier(val) {
				*ds = append(*ds, Diagnostic{Error, e.Pos,
					fmt.Sprintf("attribute %s=%q on <%s> is neither a number, a parameter name, nor %q", spec.Name, val, e.Name, Unknown)})
			}
		}
		return
	}
	// Value may be numeric or a param reference even when a unit exists.
	if _, err := strconv.ParseFloat(strings.TrimSpace(val), 64); err != nil {
		if isIdentifier(val) {
			return
		}
		*ds = append(*ds, Diagnostic{Error, e.Pos,
			fmt.Sprintf("attribute %s=%q on <%s> is not numeric", spec.Name, val, e.Name)})
		return
	}
	dim, _, err := units.ParseUnit(unitVal)
	if err != nil {
		*ds = append(*ds, Diagnostic{Error, e.Pos,
			fmt.Sprintf("attribute %s on <%s>: %v", unitAttr, e.Name, err)})
		return
	}
	if spec.Dim != units.Dimensionless && dim != spec.Dim {
		*ds = append(*ds, Diagnostic{Error, e.Pos,
			fmt.Sprintf("attribute %s on <%s>: unit %q has dimension %s, expected %s",
				spec.Name, e.Name, unitVal, dim, spec.Dim)})
	}
}

func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
