package patterns

import (
	"strings"
	"testing"

	"xpdl/internal/model"
	"xpdl/internal/query"
	"xpdl/internal/rtmodel"
	"xpdl/internal/units"
)

// session builds a host+2 GPUs platform, optionally tagging roles.
func session(withRoles bool, gpus int) *query.Session {
	sys := model.New("system")
	sys.ID = "s"
	cpu := model.New("cpu")
	cpu.ID = "host"
	cpu.SetQuantity("frequency", units.MustParse("2", "GHz"))
	for i := 0; i < 4; i++ {
		cpu.Children = append(cpu.Children, model.New("core"))
	}
	if withRoles {
		cpu.SetAttr("role", model.Attr{Raw: "master"})
	}
	sys.Children = append(sys.Children, cpu)
	for i := 0; i < gpus; i++ {
		d := model.New("device")
		d.ID = "gpu" + string(rune('0'+i))
		d.SetAttr("compute_capability", model.Attr{Raw: "3.5",
			Quantity: units.Quantity{Value: 3.5}, HasQuantity: true})
		if withRoles {
			d.SetAttr("role", model.Attr{Raw: "worker"})
		}
		sys.Children = append(sys.Children, d)
	}
	return query.NewSession(rtmodel.Build(sys))
}

func TestMasterWorkerMatch(t *testing.T) {
	s := session(true, 2)
	b, err := Match(MasterWorker(1), s)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Slot("master"); len(got) != 1 || got[0] != "host" {
		t.Fatalf("master = %v", got)
	}
	if got := b.Slot("worker"); len(got) != 2 {
		t.Fatalf("workers = %v", got)
	}
	if !strings.Contains(b.String(), "master=[host]") {
		t.Fatalf("binding string = %s", b)
	}
}

func TestMatchWithoutRoleHints(t *testing.T) {
	// Roles are usually implied by the hardware blocks (Section II-A):
	// matching works with no role attributes at all.
	s := session(false, 1)
	b, err := Match(MasterWorker(1), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Slot("worker")) != 1 {
		t.Fatalf("workers = %v", b.Slot("worker"))
	}
}

func TestRoleHintsExclude(t *testing.T) {
	// A cpu explicitly tagged worker cannot fill the master slot.
	sys := model.New("system")
	sys.ID = "s"
	cpu := model.New("cpu")
	cpu.ID = "slave_cpu"
	cpu.SetAttr("role", model.Attr{Raw: "worker"})
	sys.Children = append(sys.Children, cpu)
	s := query.NewSession(rtmodel.Build(sys))
	if _, err := Match(MasterWorker(0), s); err == nil ||
		!strings.Contains(err.Error(), `role "master"`) {
		t.Fatalf("role hint not honored: %v", err)
	}
	// Hybrid hints can fill any slot.
	cpu.SetAttr("role", model.Attr{Raw: "Hybrid"})
	s2 := query.NewSession(rtmodel.Build(sys))
	if _, err := Match(MasterWorker(0), s2); err != nil {
		t.Fatalf("hybrid rejected: %v", err)
	}
}

func TestUnderfilledRole(t *testing.T) {
	s := session(true, 1)
	if _, err := Match(MasterWorker(2), s); err == nil ||
		!strings.Contains(err.Error(), "needs 2 candidate(s), found 1") {
		t.Fatalf("underfill not reported: %v", err)
	}
}

func TestWhereConstraint(t *testing.T) {
	s := session(true, 2)
	p := Pattern{
		Name: "capable-worker",
		Roles: []RoleSpec{
			{Role: "worker", Kinds: []string{"device"}, Min: 1,
				Where: "compute_capability >= 3.5"},
		},
	}
	b, err := Match(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Slot("worker")) != 2 {
		t.Fatalf("workers = %v", b.Slot("worker"))
	}
	p.Roles[0].Where = "compute_capability >= 5"
	if _, err := Match(p, s); err == nil {
		t.Fatal("unsatisfiable Where matched")
	}
	p.Roles[0].Where = "1 +"
	if _, err := Match(p, s); err == nil {
		t.Fatal("bad Where expression accepted")
	}
}

func TestWherePlatformFunctions(t *testing.T) {
	s := session(true, 1)
	p := Pattern{
		Name: "big-host",
		Roles: []RoleSpec{
			{Role: "master", Kinds: []string{"cpu"}, Min: 1,
				Where: "cores >= 4 && frequency >= 1e9 && kind == 'cpu'"},
		},
	}
	if _, err := Match(p, s); err != nil {
		t.Fatal(err)
	}
}

func TestMaxBound(t *testing.T) {
	s := session(true, 2)
	p := Pattern{
		Name: "one-worker",
		Roles: []RoleSpec{
			{Role: "worker", Kinds: []string{"device"}, Min: 1, Max: 1},
		},
	}
	b, err := Match(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Slot("worker")) != 1 {
		t.Fatalf("workers = %v", b.Slot("worker"))
	}
}

func TestNoDoubleBooking(t *testing.T) {
	// The same element cannot fill two slots.
	sys := model.New("system")
	sys.ID = "s"
	cpu := model.New("cpu")
	cpu.ID = "only"
	sys.Children = append(sys.Children, cpu)
	s := query.NewSession(rtmodel.Build(sys))
	p := Pattern{
		Name: "double",
		Roles: []RoleSpec{
			{Role: "a", Kinds: []string{"cpu"}, Min: 1},
			{Role: "b", Kinds: []string{"cpu"}, Min: 1},
		},
	}
	if _, err := Match(p, s); err == nil {
		t.Fatal("element double-booked")
	}
}

func TestEmptyModel(t *testing.T) {
	s := query.NewSession(&rtmodel.Model{})
	if _, err := Match(MasterWorker(1), s); err == nil {
		t.Fatal("empty model matched")
	}
}
