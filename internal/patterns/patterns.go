// Package patterns implements abstract platform patterns — reusable
// templates for platform organization that PDL introduced and that
// Section II says XPDL should "still allow ... but rather as a
// secondary aspect to a more architecture oriented structural
// specification": a pattern describes a generic control hierarchy
// (master / workers / hybrids) with structural requirements, and is
// matched against a composed XPDL model to find the hardware entities
// that can play each role.
package patterns

import (
	"fmt"
	"sort"
	"strings"

	"xpdl/internal/expr"
	"xpdl/internal/query"
)

// RoleSpec describes one role slot of a pattern.
type RoleSpec struct {
	// Role is the slot name, e.g. "master", "worker".
	Role string
	// Kinds lists the element kinds that can fill the slot (e.g. cpu for
	// masters, device/gpu for workers).
	Kinds []string
	// Min/Max bound how many entities must/can fill the slot; Max 0
	// means unbounded.
	Min, Max int
	// Where is an optional constraint evaluated per candidate with the
	// platform env plus the candidate's attributes bound as variables
	// (plus `kind`, `id`, `type`).
	Where string
}

// Pattern is an abstract platform pattern.
type Pattern struct {
	Name  string
	Roles []RoleSpec
}

// MasterWorker returns the classic PDL pattern: one general-purpose
// master CPU and at least minWorkers accelerator workers.
func MasterWorker(minWorkers int) Pattern {
	return Pattern{
		Name: "master-worker",
		Roles: []RoleSpec{
			{Role: "master", Kinds: []string{"cpu"}, Min: 1, Max: 1},
			{Role: "worker", Kinds: []string{"device", "gpu"}, Min: minWorkers},
		},
	}
}

// Binding is one successful pattern match: role → element identifiers.
type Binding struct {
	Pattern string
	Slots   map[string][]string
}

// Slot returns the identifiers bound to a role.
func (b Binding) Slot(role string) []string { return b.Slots[role] }

// String renders the binding for tool output.
func (b Binding) String() string {
	roles := make([]string, 0, len(b.Slots))
	for r := range b.Slots {
		roles = append(roles, r)
	}
	sort.Strings(roles)
	parts := make([]string, len(roles))
	for i, r := range roles {
		parts[i] = fmt.Sprintf("%s=%v", r, b.Slots[r])
	}
	return fmt.Sprintf("%s{%s}", b.Pattern, strings.Join(parts, " "))
}

// Match instantiates the pattern against a loaded platform model. It
// returns an error naming the first role whose Min cannot be met.
// Candidates with an explicit role attribute must agree with the slot
// (the PDL-inherited role attributes act as hints, Section II-A).
func Match(p Pattern, s *query.Session) (Binding, error) {
	b := Binding{Pattern: p.Name, Slots: map[string][]string{}}
	root := s.Root()
	if !root.Valid() {
		return b, fmt.Errorf("patterns: empty platform model")
	}
	for _, role := range p.Roles {
		var ids []string
		for _, kind := range role.Kinds {
			for _, e := range root.Descendants(kind) {
				// Skip nested matches (e.g. a cpu inside a device slot
				// candidate) only when the same element already fills a
				// slot.
				id := e.Ident()
				if id == "" {
					continue
				}
				if taken(b, id) {
					continue
				}
				if hint, ok := e.GetString("role"); ok && hint != "" &&
					!strings.EqualFold(hint, role.Role) && !strings.EqualFold(hint, "hybrid") {
					continue
				}
				if role.Where != "" {
					okc, err := candidateOK(role.Where, s, e)
					if err != nil {
						return b, fmt.Errorf("patterns: role %s: %w", role.Role, err)
					}
					if !okc {
						continue
					}
				}
				ids = append(ids, id)
				if role.Max > 0 && len(ids) == role.Max {
					break
				}
			}
			if role.Max > 0 && len(ids) == role.Max {
				break
			}
		}
		if len(ids) < role.Min {
			return b, fmt.Errorf("patterns: %s: role %q needs %d candidate(s), found %d",
				p.Name, role.Role, role.Min, len(ids))
		}
		sort.Strings(ids)
		b.Slots[role.Role] = ids
	}
	return b, nil
}

func taken(b Binding, id string) bool {
	for _, ids := range b.Slots {
		for _, x := range ids {
			if x == id {
				return true
			}
		}
	}
	return false
}

// candidateOK evaluates the Where constraint for one candidate element.
func candidateOK(where string, s *query.Session, e query.Elem) (bool, error) {
	vars := map[string]expr.Value{
		"kind": expr.String(e.Kind()),
		"id":   expr.String(e.Ident()),
		"type": expr.String(e.TypeName()),
	}
	node := e
	// Bind the candidate's numeric and string attributes.
	for _, attrName := range []string{
		"frequency", "static_power", "compute_capability", "num_cores", "size",
	} {
		if f, ok := node.GetFloat(attrName); ok {
			vars[attrName] = expr.Number(f)
		} else if str, ok := node.GetString(attrName); ok {
			vars[attrName] = expr.String(str)
		}
	}
	vars["cores"] = expr.Number(float64(e.NumCores()))
	return expr.EvalBool(where, s.Env(vars))
}
