package resolve

import (
	"strings"
	"testing"

	"xpdl/internal/model"
	"xpdl/internal/parser"
	"xpdl/internal/repo"
	"xpdl/internal/units"
)

// newRepo builds an in-memory repository from named descriptor sources.
func newRepo(t *testing.T, files map[string]string) *repo.Repository {
	t.Helper()
	r, err := repo.New()
	if err != nil {
		t.Fatal(err)
	}
	p := parser.New()
	for name, src := range files {
		c, _, err := p.ParseFile(name+".xpdl", []byte(src))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := r.Register(c); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

const keplerMeta = `
<device name="Nvidia_Kepler" extends="Nvidia_GPU" role="worker" compute_capability="3.0">
  <const name="shmtotalsize" type="msize" value="64" unit="KB"/>
  <param name="L1size" configurable="true" type="msize" range="16, 32, 48" unit="KB"/>
  <param name="shmsize" configurable="true" type="msize" range="16, 32, 48" unit="KB"/>
  <param name="num_SM" type="integer"/>
  <param name="coresperSM" type="integer"/>
  <param name="cfrq" type="frequency" />
  <param name="gmsz" type="msize" />
  <constraints>
    <constraint expr="L1size + shmsize == shmtotalsize" />
  </constraints>
  <group name="SMs" quantity="num_SM">
    <group name="SM">
      <group prefix="smcore" quantity="coresperSM">
        <core frequency="cfrq" frequency_unit="MHz" />
      </group>
      <cache name="L1" size="L1size" unit="KB" />
      <memory name="shm" size="shmsize" unit="KB" />
    </group>
  </group>
  <memory name="globalmem" type="global" size="gmsz" unit="GB" />
  <programming_model type="cuda6.0, opencl"/>
</device>`

const nvidiaGPUMeta = `
<device name="Nvidia_GPU" role="worker">
  <properties><property name="vendor" value="Nvidia"/></properties>
</device>`

const k20cMeta = `
<device name="Nvidia_K20c" extends="Nvidia_Kepler" compute_capability="3.5">
  <param name="num_SM" value="13" />
  <param name="coresperSM" value="192" />
  <param name="cfrq" value="706" unit="MHz"/>
  <param name="gmsz" size="5" unit="GB" />
</device>`

const gpu1Instance = `
<device id="gpu1" type="Nvidia_K20c">
  <param name="L1size" size="16" unit="KB" />
  <param name="shmsize" size="48" unit="KB" />
</device>`

func keplerRepo(t *testing.T) *repo.Repository {
	return newRepo(t, map[string]string{
		"Nvidia_GPU":    nvidiaGPUMeta,
		"Nvidia_Kepler": keplerMeta,
		"Nvidia_K20c":   k20cMeta,
		"gpu1":          gpu1Instance,
	})
}

func TestKeplerK20cInheritance(t *testing.T) {
	r := New(keplerRepo(t))
	gpu, err := r.ResolveSystem("gpu1")
	if err != nil {
		t.Fatal(err)
	}
	// Identity: instance id wins, type tag retained.
	if gpu.ID != "gpu1" || gpu.Type != "Nvidia_K20c" || gpu.Name != "" {
		t.Fatalf("identity = %s", gpu)
	}
	// Overridden attribute: compute_capability 3.0 -> 3.5.
	cc, _ := gpu.Attr("compute_capability")
	if !cc.HasQuantity || cc.Quantity.Value != 3.5 {
		t.Fatalf("compute_capability = %+v", cc)
	}
	// Inherited attribute from Nvidia_GPU.
	if gpu.AttrRaw("role") != "worker" {
		t.Fatal("role lost in inheritance chain")
	}
	// Property inherited from the root supertype.
	if gpu.Property("vendor") == nil {
		t.Fatal("vendor property lost")
	}
	// Group expansion: 13 SMs, each with 192 cores.
	if got := gpu.CountKind("core"); got != 13*192 {
		t.Fatalf("core count = %d, want %d", got, 13*192)
	}
	// 13 SM L1 caches with the instance-fixed 16 KB size.
	caches := 0
	gpu.Walk(func(c *model.Component) bool {
		if c.Kind == "cache" && c.Name == "L1" {
			caches++
			q, ok := c.QuantityAttr("size")
			if !ok || q.Value != 16*1024 {
				t.Fatalf("L1 size = %+v (ok=%v)", q, ok)
			}
		}
		return true
	})
	if caches != 13 {
		t.Fatalf("L1 caches = %d", caches)
	}
	// Core frequency substituted from cfrq: 706 MHz.
	core := gpu.FindByID("smcore0")
	if core == nil {
		t.Fatal("smcore0 not found")
	}
	freq, ok := core.Children[0].QuantityAttr("frequency")
	if !ok || freq.Value != 706e6 || freq.Dim != units.Frequency {
		t.Fatalf("core frequency = %+v (ok=%v)", freq, ok)
	}
	// Global memory gets the gmsz binding: 5 GB.
	gm := gpu.FindByID("globalmem")
	if gm == nil {
		t.Fatal("globalmem not found")
	}
	sz, ok := gm.QuantityAttr("size")
	if !ok || sz.Value != 5*(1<<30) {
		t.Fatalf("gmsz = %+v", sz)
	}
}

func TestAllLegalKeplerConfigs(t *testing.T) {
	for _, cfg := range []struct{ l1, shm string }{{"16", "48"}, {"32", "32"}, {"48", "16"}} {
		files := map[string]string{
			"Nvidia_GPU":    nvidiaGPUMeta,
			"Nvidia_Kepler": keplerMeta,
			"Nvidia_K20c":   k20cMeta,
			"gpu1": `
<device id="gpu1" type="Nvidia_K20c">
  <param name="L1size" size="` + cfg.l1 + `" unit="KB" />
  <param name="shmsize" size="` + cfg.shm + `" unit="KB" />
</device>`,
		}
		r := New(newRepo(t, files))
		if _, err := r.ResolveSystem("gpu1"); err != nil {
			t.Errorf("config %s+%s rejected: %v", cfg.l1, cfg.shm, err)
		}
	}
}

func TestConstraintViolationRejected(t *testing.T) {
	files := map[string]string{
		"Nvidia_GPU":    nvidiaGPUMeta,
		"Nvidia_Kepler": keplerMeta,
		"Nvidia_K20c":   k20cMeta,
		"gpu1": `
<device id="gpu1" type="Nvidia_K20c">
  <param name="L1size" size="32" unit="KB" />
  <param name="shmsize" size="48" unit="KB" />
</device>`,
	}
	r := New(newRepo(t, files))
	_, err := r.ResolveSystem("gpu1")
	if err == nil || !strings.Contains(err.Error(), "constraint violated") {
		t.Fatalf("violation not caught: %v", err)
	}
}

func TestRangeViolationRejected(t *testing.T) {
	files := map[string]string{
		"Nvidia_GPU":    nvidiaGPUMeta,
		"Nvidia_Kepler": keplerMeta,
		"Nvidia_K20c":   k20cMeta,
		"gpu1": `
<device id="gpu1" type="Nvidia_K20c">
  <param name="L1size" size="20" unit="KB" />
  <param name="shmsize" size="44" unit="KB" />
</device>`,
	}
	r := New(newRepo(t, files))
	_, err := r.ResolveSystem("gpu1")
	if err == nil || !strings.Contains(err.Error(), "outside legal range") {
		t.Fatalf("range violation not caught: %v", err)
	}
}

func TestListing1GroupExpansion(t *testing.T) {
	files := map[string]string{
		"Intel_Xeon_E5_2630L": `
<cpu name="Intel_Xeon_E5_2630L">
  <group prefix="core_group" quantity="2">
    <group prefix="core" quantity="2">
      <core frequency="2" frequency_unit="GHz" />
      <cache name="L1" size="32" unit="KiB" />
    </group>
    <cache name="L2" size="256" unit="KiB" />
  </group>
  <cache name="L3" size="15" unit="MiB" />
</cpu>`,
		"cpu0": `<cpu id="cpu0" type="Intel_Xeon_E5_2630L"/>`,
	}
	r := New(newRepo(t, files))
	cpu, err := r.ResolveSystem("cpu0")
	if err != nil {
		t.Fatal(err)
	}
	if got := cpu.CountKind("core"); got != 4 {
		t.Fatalf("cores = %d, want 4", got)
	}
	// 4 L1 + 2 L2 + 1 L3 = 7 caches.
	if got := cpu.CountKind("cache"); got != 7 {
		t.Fatalf("caches = %d, want 7", got)
	}
	for _, id := range []string{"core_group0", "core_group1", "core0", "core1"} {
		if cpu.FindByID(id) == nil {
			t.Errorf("member %s not found", id)
		}
	}
	// Each core_group member holds exactly one L2.
	cg0 := cpu.FindByID("core_group0")
	l2s := 0
	cg0.Walk(func(c *model.Component) bool {
		if c.Kind == "cache" && c.Name == "L2" {
			l2s++
		}
		return true
	})
	if l2s != 1 {
		t.Fatalf("L2 per core_group = %d", l2s)
	}
}

func TestUnboundParamRejected(t *testing.T) {
	files := map[string]string{
		"M": `
<cpu name="M">
  <param name="f" type="frequency"/>
  <core frequency="f" frequency_unit="MHz"/>
</cpu>`,
		"c0": `<cpu id="c0" type="M"/>`,
	}
	r := New(newRepo(t, files))
	if _, err := r.ResolveSystem("c0"); err == nil ||
		!strings.Contains(err.Error(), "unbound parameter") {
		t.Fatalf("unbound param not caught: %v", err)
	}
}

func TestUnboundQuantityRejected(t *testing.T) {
	files := map[string]string{
		"M": `
<cpu name="M">
  <param name="n" type="integer"/>
  <group prefix="c" quantity="n"><core/></group>
</cpu>`,
		"c0": `<cpu id="c0" type="M"/>`,
	}
	r := New(newRepo(t, files))
	if _, err := r.ResolveSystem("c0"); err == nil {
		t.Fatal("unbound quantity not caught")
	}
}

func TestInheritanceCycleDetected(t *testing.T) {
	files := map[string]string{
		"A": `<cpu name="A" extends="B"/>`,
		"B": `<cpu name="B" extends="A"/>`,
		"x": `<cpu id="x" type="A"/>`,
	}
	r := New(newRepo(t, files))
	if _, err := r.ResolveSystem("x"); err == nil ||
		!strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not caught: %v", err)
	}
}

func TestMissingTypeRejected(t *testing.T) {
	files := map[string]string{
		"x": `<cpu id="x" type="NoSuchCPU"/>`,
	}
	r := New(newRepo(t, files))
	if _, err := r.ResolveSystem("x"); err == nil {
		t.Fatal("missing meta-model not caught")
	}
}

func TestLeafTypeTagTolerated(t *testing.T) {
	files := map[string]string{
		"x": `
<system id="x">
  <memory id="m0" type="DDR3" size="4" unit="GB"/>
  <software><installed type="CUDA_6.0" path="/ext/local/cuda6.0/"/></software>
</system>`,
	}
	r := New(newRepo(t, files))
	sys, err := r.ResolveSystem("x")
	if err != nil {
		t.Fatal(err)
	}
	if sys.FindByID("m0").Type != "DDR3" {
		t.Fatal("leaf type tag lost")
	}
}

func TestEndpointCheck(t *testing.T) {
	good := map[string]string{
		"pcie3": `<interconnect name="pcie3"><channel name="up_link" max_bandwidth="6" max_bandwidth_unit="GiB/s"/></interconnect>`,
		"CPU":   `<cpu name="CPU"/>`,
		"sys": `
<system id="sys">
  <socket><cpu id="host" type="CPU"/></socket>
  <device id="dev1"/>
  <interconnects>
    <interconnect id="conn1" type="pcie3" head="host" tail="dev1"/>
  </interconnects>
</system>`,
	}
	r := New(newRepo(t, good))
	sys, err := r.ResolveSystem("sys")
	if err != nil {
		t.Fatal(err)
	}
	conn := sys.FindByID("conn1")
	if conn == nil {
		t.Fatal("conn1 missing")
	}
	// The pcie3 meta contents were merged into the instance.
	if conn.FirstChildKind("channel") == nil {
		t.Fatal("channel not inherited from interconnect meta")
	}

	bad := map[string]string{
		"pcie3": good["pcie3"],
		"CPU":   good["CPU"],
		"sys": `
<system id="sys">
  <socket><cpu id="host" type="CPU"/></socket>
  <interconnects>
    <interconnect id="conn1" type="pcie3" head="host" tail="ghost"/>
  </interconnects>
</system>`,
	}
	r2 := New(newRepo(t, bad))
	if _, err := r2.ResolveSystem("sys"); err == nil ||
		!strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("dangling endpoint not caught: %v", err)
	}
}

func TestPowerDomainChildrenAreReferences(t *testing.T) {
	files := map[string]string{
		"pd": `
<power_domains name="pd">
  <power_domain name="main_pd" enableSwitchOff="false">
    <core type="Leon" />
  </power_domain>
  <group name="Shave_pds" quantity="8">
    <power_domain name="Shave_pd">
      <core type="Myriad1_Shave" />
    </power_domain>
  </group>
  <power_domain name="CMX_pd" switchoffCondition="Shave_pds off">
    <memory type="CMX" />
  </power_domain>
</power_domains>`,
		"inst": `<power_domains id="inst" type="pd"/>`,
	}
	r := New(newRepo(t, files))
	pd, err := r.ResolveSystem("inst")
	if err != nil {
		t.Fatal(err)
	}
	// The Shave group expanded to 8 domains.
	if got := pd.CountKind("power_domain"); got != 10 {
		t.Fatalf("power domains = %d, want 10", got)
	}
	// The member reference <core type="Leon"> survived without a Leon
	// meta-model in the repository.
	main := pd.FindByID("main_pd")
	if main == nil || main.FirstChildKind("core") == nil ||
		main.FirstChildKind("core").Type != "Leon" {
		t.Fatal("power domain member reference lost")
	}
}

func TestFindByPath(t *testing.T) {
	files := map[string]string{
		"N": `<node name="N"><device id="gpu1"/></node>`,
		"cl": `
<system id="cl">
  <cluster>
    <group prefix="n" quantity="3">
      <node type="N"/>
    </group>
  </cluster>
</system>`,
	}
	r := New(newRepo(t, files))
	sys, err := r.ResolveSystem("cl")
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.CountKind("device"); got != 3 {
		t.Fatalf("devices = %d", got)
	}
	d := FindByPath(sys, "n2/gpu1")
	if d == nil || d.Kind != "device" {
		t.Fatal("path lookup failed")
	}
	if FindByPath(sys, "n9/gpu1") != nil {
		t.Fatal("bogus path resolved")
	}
	if FindByPath(sys, "") != sys {
		t.Fatal("empty path should return root")
	}
}

func TestQuantityExpression(t *testing.T) {
	files := map[string]string{
		"M": `
<cpu name="M">
  <param name="n" type="integer" value="3"/>
  <group prefix="c" quantity="n * 2"><core/></group>
</cpu>`,
		"c0": `<cpu id="c0" type="M"/>`,
	}
	r := New(newRepo(t, files))
	cpu, err := r.ResolveSystem("c0")
	if err != nil {
		t.Fatal(err)
	}
	if got := cpu.CountKind("core"); got != 6 {
		t.Fatalf("cores = %d, want 6", got)
	}
}

func TestNegativeQuantityRejected(t *testing.T) {
	files := map[string]string{
		"c0": `<cpu id="c0"><group prefix="c" quantity="0 - 2"><core/></group></cpu>`,
	}
	r := New(newRepo(t, files))
	if _, err := r.ResolveSystem("c0"); err == nil {
		t.Fatal("negative quantity not caught")
	}
}

func TestZeroQuantityGroup(t *testing.T) {
	files := map[string]string{
		"c0": `<cpu id="c0"><group prefix="c" quantity="0"><core/></group></cpu>`,
	}
	r := New(newRepo(t, files))
	cpu, err := r.ResolveSystem("c0")
	if err != nil {
		t.Fatal(err)
	}
	if got := cpu.CountKind("core"); got != 0 {
		t.Fatalf("cores = %d, want 0", got)
	}
}

func TestRepositoryNotMutated(t *testing.T) {
	rp := keplerRepo(t)
	r := New(rp)
	if _, err := r.ResolveSystem("gpu1"); err != nil {
		t.Fatal(err)
	}
	// The registered instance must still be unexpanded.
	orig, err := rp.Load("gpu1")
	if err != nil {
		t.Fatal(err)
	}
	if orig.CountKind("core") != 0 {
		t.Fatal("resolution mutated the repository copy")
	}
}

func TestMultipleInheritance(t *testing.T) {
	files := map[string]string{
		"A": `<device name="A" role="worker"><properties><property name="pa" value="1"/></properties></device>`,
		"B": `<device name="B" compute_capability="2.0"/>`,
		"C": `<device name="C" extends="A, B" />`,
		"x": `<device id="x" type="C"/>`,
	}
	r := New(newRepo(t, files))
	d, err := r.ResolveSystem("x")
	if err != nil {
		t.Fatal(err)
	}
	if d.AttrRaw("role") != "worker" {
		t.Fatal("attr from first supertype lost")
	}
	if cc, _ := d.Attr("compute_capability"); !cc.HasQuantity || cc.Quantity.Value != 2.0 {
		t.Fatal("attr from second supertype lost")
	}
	if d.Property("pa") == nil {
		t.Fatal("property from supertype lost")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rp := keplerRepo(t)
	serial, err := New(rp).ResolveSystem("gpu1")
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallel(rp, 8).ResolveSystem("gpu1")
	if err != nil {
		t.Fatal(err)
	}
	if serial.Tree() != par.Tree() {
		t.Fatal("parallel expansion diverges from serial")
	}
	if got := par.CountKind("core"); got != 13*192 {
		t.Fatalf("parallel cores = %d", got)
	}
}

func TestParallelPropagatesErrors(t *testing.T) {
	files := map[string]string{
		"M": `
<cpu name="M">
  <param name="f" type="frequency"/>
  <group prefix="c" quantity="32">
    <core frequency="f" frequency_unit="MHz"/>
  </group>
</cpu>`,
		"c0": `<cpu id="c0" type="M"/>`,
	}
	r := NewParallel(newRepo(t, files), 4)
	if _, err := r.ResolveSystem("c0"); err == nil ||
		!strings.Contains(err.Error(), "unbound parameter") {
		t.Fatalf("parallel error lost: %v", err)
	}
}

func TestParallelConstraintViolation(t *testing.T) {
	files := map[string]string{
		"Nvidia_GPU":    nvidiaGPUMeta,
		"Nvidia_Kepler": keplerMeta,
		"Nvidia_K20c":   k20cMeta,
		"gpu1": `
<device id="gpu1" type="Nvidia_K20c">
  <param name="L1size" size="32" unit="KB" />
  <param name="shmsize" size="48" unit="KB" />
</device>`,
	}
	r := NewParallel(newRepo(t, files), 8)
	if _, err := r.ResolveSystem("gpu1"); err == nil {
		t.Fatal("parallel resolution missed constraint violation")
	}
}
