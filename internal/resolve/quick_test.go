package resolve

import (
	"fmt"
	"testing"
	"testing/quick"

	"xpdl/internal/model"
	"xpdl/internal/repo"
)

// Property: a group with quantity n expands to exactly n members with
// ids prefix0..prefix(n-1), each containing one clone of every template
// child, for arbitrary small n and template widths.
func TestQuickGroupExpansionShape(t *testing.T) {
	f := func(qn, width uint8) bool {
		n := int(qn % 24)
		w := int(width%4) + 1
		rp, err := repo.New()
		if err != nil {
			return false
		}
		root := model.New("cpu")
		root.ID = "c0"
		g := model.New("group")
		g.Prefix = "m"
		g.Quantity = fmt.Sprintf("%d", n)
		for i := 0; i < w; i++ {
			g.Children = append(g.Children, model.New("core"))
		}
		root.Children = append(root.Children, g)
		if err := rp.Register(root); err != nil {
			return false
		}
		out, err := New(rp).ResolveSystem("c0")
		if err != nil {
			return false
		}
		if out.CountKind("core") != n*w {
			return false
		}
		for i := 0; i < n; i++ {
			m := out.FindByID(fmt.Sprintf("m%d", i))
			if m == nil || len(m.Children) != w {
				return false
			}
		}
		// No member beyond n-1 exists.
		return out.FindByID(fmt.Sprintf("m%d", n)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: serial and parallel expansion produce identical trees for
// random group sizes.
func TestQuickParallelSerialParity(t *testing.T) {
	f := func(qn uint8) bool {
		n := int(qn%16) + 1
		build := func() *repo.Repository {
			rp, _ := repo.New()
			root := model.New("cpu")
			root.ID = "c0"
			g := model.New("group")
			g.Prefix = "m"
			g.Quantity = fmt.Sprintf("%d", n)
			core := model.New("core")
			cache := model.New("cache")
			cache.Name = "L1"
			g.Children = append(g.Children, core, cache)
			root.Children = append(root.Children, g)
			_ = rp.Register(root)
			return rp
		}
		serial, err1 := New(build()).ResolveSystem("c0")
		par := NewParallel(build(), 4)
		par.ParallelThreshold = 1
		par.MinParallelCost = 0
		parOut, err2 := par.ResolveSystem("c0")
		if err1 != nil || err2 != nil {
			return false
		}
		return serial.Tree() == parOut.Tree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
