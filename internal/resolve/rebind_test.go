package resolve

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"xpdl/internal/model"
)

// sweepFiles is a small composition with the same parameter name
// declared at two depths: the system binds L1size=16 at the root, and
// dev1 carries its own L1size=32 that shadows it inside the device.
func sweepFiles() map[string]string {
	return map[string]string{
		"Nvidia_GPU":    nvidiaGPUMeta,
		"Nvidia_Kepler": keplerMeta,
		"sweep_sys": `
<system id="sweep_sys">
  <param name="L1size" value="16" unit="KB" />
  <memory id="rootmem" size="L1size" unit="KB" />
  <device id="dev1" type="Nvidia_Kepler">
    <param name="L1size" size="32" unit="KB" />
    <param name="shmsize" size="32" unit="KB" />
    <param name="num_SM" value="2" />
    <param name="coresperSM" value="4" />
    <param name="cfrq" value="705" unit="MHz" />
    <param name="gmsz" value="5" unit="GB" />
  </device>
</system>`,
	}
}

func resolveSweepSys(t *testing.T) (*Resolver, *model.Component) {
	t.Helper()
	r := New(newRepo(t, sweepFiles()))
	root, err := r.ResolveSystem("sweep_sys")
	if err != nil {
		t.Fatal(err)
	}
	return r, root
}

func attrVal(t *testing.T, root *model.Component, ident, attr string) float64 {
	t.Helper()
	var out *model.Component
	root.Walk(func(c *model.Component) bool {
		if out == nil && c.Ident() == ident {
			out = c
			return false
		}
		return out == nil
	})
	if out == nil {
		t.Fatalf("component %q not found", ident)
	}
	q, ok := out.QuantityAttr(attr)
	if !ok {
		t.Fatalf("%s has no quantity attr %q", ident, attr)
	}
	return q.Value
}

// TestRebindMatchesFullResolve pins byte-for-byte parity between the
// rebind fast path and re-resolving from scratch with the same bound
// values.
func TestRebindMatchesFullResolve(t *testing.T) {
	r, base := resolveSweepSys(t)

	// Fast path: clone the resolved tree and rebind dev1's split.
	fast := base.Clone()
	ovs := []Override{
		{Target: "dev1", Name: "L1size", Value: "48", Unit: "KB"},
		{Target: "dev1", Name: "shmsize", Value: "16", Unit: "KB"},
	}
	if err := Rebind(fast, ovs); err != nil {
		t.Fatal(err)
	}

	// Oracle: bind the same values on the concrete tree and resolve.
	concrete, err := r.Repo.Load("sweep_sys")
	if err != nil {
		t.Fatal(err)
	}
	concrete = concrete.Clone()
	if err := ApplyOverrides(concrete, ovs); err != nil {
		t.Fatal(err)
	}
	full, err := r.Instantiate(concrete)
	if err != nil {
		t.Fatal(err)
	}

	fb, _ := json.Marshal(fast)
	ob, _ := json.Marshal(full)
	if string(fb) != string(ob) {
		t.Fatalf("rebind diverged from full resolve:\nfast: %s\nfull: %s", fb, ob)
	}
	if got := attrVal(t, fast, "L1", "size"); got != 48*1024 {
		t.Fatalf("L1 size after rebind = %v, want 49152", got)
	}
}

// TestRebindScopeShadowing pins that a root-level rebind of L1size
// moves the root cache but not dev1's caches (dev1's own declaration
// shadows it), at the exact same depths the resolver binds them.
func TestRebindScopeShadowing(t *testing.T) {
	_, base := resolveSweepSys(t)
	if got := attrVal(t, base, "rootmem", "size"); got != 16*1024 {
		t.Fatalf("rootmem size = %v, want 16384", got)
	}
	if got := attrVal(t, base, "L1", "size"); got != 32*1024 {
		t.Fatalf("dev L1 size = %v, want 32768", got)
	}

	fast := base.Clone()
	if err := Rebind(fast, []Override{{Target: "", Name: "L1size", Value: "48", Unit: "KB"}}); err != nil {
		t.Fatal(err)
	}
	if got := attrVal(t, fast, "rootmem", "size"); got != 48*1024 {
		t.Fatalf("root rebind did not move rootmem: %v", got)
	}
	if got := attrVal(t, fast, "L1", "size"); got != 32*1024 {
		t.Fatalf("root rebind leaked into dev1's shadowed scope: %v", got)
	}
}

// TestRebindViolationClassified pins that constraint and range
// failures carry Violation=true (sweep engines classify those points
// as skipped, not failed) while other errors do not.
func TestRebindViolationClassified(t *testing.T) {
	_, base := resolveSweepSys(t)

	// Constraint violation: L1size + shmsize != 64KB.
	fast := base.Clone()
	err := Rebind(fast, []Override{{Target: "dev1", Name: "L1size", Value: "48", Unit: "KB"}})
	if err == nil {
		t.Fatal("want constraint violation")
	}
	var re *Error
	if !errors.As(err, &re) || !re.Violation {
		t.Fatalf("constraint failure not classified as violation: %#v", err)
	}
	if !strings.Contains(err.Error(), "constraint violated") {
		t.Fatalf("unexpected message: %v", err)
	}

	// Range failure: 24 is not one of 16/32/48.
	fast = base.Clone()
	err = Rebind(fast, []Override{
		{Target: "dev1", Name: "L1size", Value: "24", Unit: "KB"},
		{Target: "dev1", Name: "shmsize", Value: "40", Unit: "KB"},
	})
	if err == nil {
		t.Fatal("want range violation")
	}
	if !errors.As(err, &re) || !re.Violation {
		t.Fatalf("range failure not classified as violation: %#v", err)
	}

	// Unmatched target: an input error, not a violation.
	fast = base.Clone()
	err = Rebind(fast, []Override{{Target: "nope", Name: "L1size", Value: "16", Unit: "KB"}})
	if err == nil {
		t.Fatal("want target error")
	}
	if errors.As(err, &re) && re.Violation {
		t.Fatalf("target error misclassified as violation: %v", err)
	}
}

// TestFullResolveViolationClassified pins the same classification on
// the full resolver path, so per-point sweep errors sort identically
// whichever path evaluated them.
func TestFullResolveViolationClassified(t *testing.T) {
	r := New(newRepo(t, sweepFiles()))
	concrete, err := r.Repo.Load("sweep_sys")
	if err != nil {
		t.Fatal(err)
	}
	concrete = concrete.Clone()
	if err := ApplyOverrides(concrete, []Override{{Target: "dev1", Name: "L1size", Value: "48", Unit: "KB"}}); err != nil {
		t.Fatal(err)
	}
	_, err = r.Instantiate(concrete)
	if err == nil {
		t.Fatal("want constraint violation")
	}
	var re *Error
	if !errors.As(err, &re) || !re.Violation {
		t.Fatalf("full-resolve constraint failure not classified: %#v", err)
	}
}

func TestRebindRejectsQuantity(t *testing.T) {
	_, base := resolveSweepSys(t)
	err := Rebind(base.Clone(), []Override{{Target: "dev1", Name: "quantity", Value: "3"}})
	if err == nil || !strings.Contains(err.Error(), "quantity") {
		t.Fatalf("want quantity rejection, got %v", err)
	}
}

func TestStructureSensitive(t *testing.T) {
	r := New(newRepo(t, sweepFiles()))
	if _, err := r.ResolveSystem("sweep_sys"); err != nil {
		t.Fatal(err)
	}
	trees := r.FlattenedMetas()
	if len(trees) == 0 {
		t.Fatal("no flattened metas cached")
	}
	if !StructureSensitive(map[string]bool{"num_SM": true}, trees...) {
		t.Fatal("num_SM drives group replication, must be structure-sensitive")
	}
	if StructureSensitive(map[string]bool{"L1size": true}, trees...) {
		t.Fatal("L1size is attribute-only, must not be structure-sensitive")
	}
}

// TestForkIndependence pins that forked resolvers share the flattened
// cache snapshot but fail/succeed independently.
func TestForkIndependence(t *testing.T) {
	r := New(newRepo(t, sweepFiles()))
	if _, err := r.ResolveSystem("sweep_sys"); err != nil {
		t.Fatal(err)
	}
	f := r.Fork()
	concrete, err := r.Repo.Load("sweep_sys")
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Instantiate(concrete.Clone())
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.Instantiate(concrete.Clone())
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if string(gb) != string(wb) {
		t.Fatal("forked resolver produced a different tree")
	}
}
