// Package resolve implements the XPDL model composition engine: it turns
// a concrete model (a <system> instance referencing meta-models by name)
// into a fully expanded instance tree.
//
// Resolution performs, in order (Section III-A):
//
//  1. Meta-model flattening: the (multiple) inheritance hierarchy given
//     by extends= is merged supertype-first, so subtypes overscribe
//     attribute values and add members (Listing 8/9: Nvidia_K20c
//     extends Nvidia_Kepler).
//  2. Type instantiation: every component with type=T is merged with the
//     flattened meta-model T fetched from the repository; instance
//     attributes and parameter bindings override meta defaults
//     (Listing 10: the concrete gpu1 fixes one L1/shm configuration).
//  3. Parameter binding and substitution: attribute values naming a
//     param or const in scope are replaced by the bound value
//     (Listing 8: <core frequency="cfrq">).
//  4. Group expansion: <group prefix="core" quantity="4"> becomes member
//     instances core0..core3; quantity may be a param expression
//     (Listing 8: quantity="num_SM").
//  5. Constraint checking: every <constraint expr=...> whose identifiers
//     are bound must evaluate to true (Listing 8:
//     L1size + shmsize == shmtotalsize).
package resolve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"xpdl/internal/expr"
	"xpdl/internal/model"
	"xpdl/internal/obs"
	"xpdl/internal/repo"
	"xpdl/internal/units"
)

// Composition-engine counters in the process-wide registry: group
// expansion fan-out and flatten-cache effectiveness, the two levers of
// resolution cost (see /metrics on any obs-enabled tool).
var (
	mGroupsExpanded = obs.Default().Counter("xpdl_resolve_groups_expanded_total",
		"Quantity-groups expanded into member replicas.")
	mGroupMembers = obs.Default().Counter("xpdl_resolve_group_members_total",
		"Group member instances created by expansion.")
	mParallelExpansions = obs.Default().Counter("xpdl_resolve_parallel_expansions_total",
		"Group expansions that fanned out over the worker pool.")
	mFlattenHits = obs.Default().Counter("xpdl_resolve_flatten_cache_hits_total",
		"Meta-model flattenings served from the memo cache.")
	mFlattenMisses = obs.Default().Counter("xpdl_resolve_flatten_cache_misses_total",
		"Meta-model flattenings computed from repository descriptors.")
)

// Resolver composes concrete models against a descriptor repository.
// A Resolver is not safe for concurrent use by multiple goroutines;
// parallelism inside one resolution is controlled by Workers.
type Resolver struct {
	Repo *repo.Repository
	// MaxDepth bounds meta-model recursion to catch reference cycles
	// that survive the explicit cycle check (default 64).
	MaxDepth int
	// Workers > 1 expands large homogeneous groups concurrently: the
	// first member is instantiated serially (warming the meta-model
	// cache), the remaining replicas fan out over a worker pool. Useful
	// for cluster models whose nodes each expand to thousands of
	// components.
	Workers int
	// ParallelThreshold is the minimum group quantity that triggers
	// parallel expansion (default 4). Because workers expand their
	// members serially, fan-out happens at the outermost sufficiently
	// large group — the granularity where per-member work amortizes the
	// goroutine and cache-snapshot overhead.
	ParallelThreshold int
	// MinParallelCost is the minimum estimated total expansion cost
	// (template cost × quantity) for parallel fan-out (default 64);
	// set to 0 to parallelize every group above the threshold.
	MinParallelCost int

	flatCache map[string]*model.Component // flattened meta-models by name
	visiting  map[string]bool             // cycle detection for flattening
}

// New returns a serial resolver over the given repository.
func New(r *repo.Repository) *Resolver {
	return &Resolver{Repo: r, MaxDepth: 64, ParallelThreshold: 4, MinParallelCost: 64,
		flatCache: map[string]*model.Component{},
		visiting:  map[string]bool{},
	}
}

// NewParallel returns a resolver expanding large groups with the given
// number of workers.
func NewParallel(r *repo.Repository, workers int) *Resolver {
	res := New(r)
	res.Workers = workers
	return res
}

// Error is a resolution failure with the position of the offending
// component.
type Error struct {
	Component string
	Pos       string
	Msg       string
	// Violation marks failures caused by the model's parameter values —
	// a constraint evaluating to false or a binding outside its legal
	// range — as opposed to structural/reference errors. Sweep drivers
	// use it to classify a point as "skipped" (an illegal configuration,
	// expected while exploring a grid) rather than "failed".
	Violation bool
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Pos != "" {
		return fmt.Sprintf("resolve: %s: %s: %s", e.Pos, e.Component, e.Msg)
	}
	return fmt.Sprintf("resolve: %s: %s", e.Component, e.Msg)
}

func errf(c *model.Component, format string, args ...any) *Error {
	pos := ""
	if c.Pos.IsValid() {
		pos = c.Pos.String()
	}
	ident := c.Ident()
	if ident == "" {
		ident = "<" + c.Kind + ">"
	}
	return &Error{Component: ident, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Fork returns an independent resolver over the same repository whose
// flatten cache starts as a snapshot of r's. Forks let callers run many
// resolutions concurrently — one fork per goroutine — without
// re-flattening the meta-models those resolutions share (the cached
// trees are immutable once published, so sharing them is safe). The
// fork's Workers is zero: callers running forks in parallel already own
// the fan-out.
func (r *Resolver) Fork() *Resolver {
	view := &Resolver{
		Repo: r.Repo, MaxDepth: r.MaxDepth,
		ParallelThreshold: r.ParallelThreshold,
		MinParallelCost:   r.MinParallelCost,
		flatCache:         make(map[string]*model.Component, len(r.flatCache)),
		visiting:          map[string]bool{},
	}
	for k, v := range r.flatCache {
		view.flatCache[k] = v
	}
	return view
}

// FlattenedMetas returns the meta-model trees flattened so far, sorted
// by name. The trees are shared with the resolver's memo cache and must
// be treated as read-only. Sweep drivers scan them (plus the concrete
// root) for group quantity expressions referencing a swept parameter,
// which would make the parameter structural.
func (r *Resolver) FlattenedMetas() []*model.Component {
	names := make([]string, 0, len(r.flatCache))
	for k := range r.flatCache {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]*model.Component, len(names))
	for i, k := range names {
		out[i] = r.flatCache[k]
	}
	return out
}

// ResolveSystem loads the named concrete model from the repository and
// returns its fully expanded instance tree. The repository contents are
// not mutated.
func (r *Resolver) ResolveSystem(ident string) (*model.Component, error) {
	root, err := r.Repo.Load(ident)
	if err != nil {
		return nil, err
	}
	return r.Instantiate(root)
}

// Instantiate fully expands one component tree (without registering the
// result anywhere). The input is cloned, never mutated.
func (r *Resolver) Instantiate(c *model.Component) (*model.Component, error) {
	inst := c.Clone()
	out, err := r.instantiate(inst, nil, 0)
	if err != nil {
		return nil, err
	}
	if err := r.checkEndpoints(out); err != nil {
		return nil, err
	}
	return out, nil
}

// scope carries the parameter/constant environment from enclosing
// components down the instantiation recursion.
type scope struct {
	parent *scope
	comp   *model.Component
}

// lookup resolves an identifier to a normalized value, searching the
// innermost scope first.
func (s *scope) lookup(name string) (expr.Value, string, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if p := sc.comp.Param(name); p != nil && p.Bound() {
			return bindingValue(p.Value, p.Unit)
		}
		if k := sc.comp.Const(name); k != nil && k.Value != "" {
			return bindingValue(k.Value, k.Unit)
		}
	}
	return expr.Value{}, "", false
}

// declared reports whether the identifier names a param/const anywhere
// in scope, bound or not.
func (s *scope) declared(name string) bool {
	for sc := s; sc != nil; sc = sc.parent {
		if sc.comp.Param(name) != nil || sc.comp.Const(name) != nil {
			return true
		}
	}
	return false
}

// bindingValue normalizes a raw binding to an expr.Value. Values with a
// unit are normalized to base units; bare numbers stay plain; anything
// else is a string.
func bindingValue(raw, unit string) (expr.Value, string, bool) {
	if unit != "" {
		if q, err := units.Parse(raw, unit); err == nil {
			return expr.Number(q.Value), unit, true
		}
	}
	if f, err := strconv.ParseFloat(strings.TrimSpace(raw), 64); err == nil {
		return expr.Number(f), unit, true
	}
	return expr.String(raw), unit, true
}

type scopeEnv struct{ s *scope }

func (e scopeEnv) Lookup(name string) (expr.Value, bool) {
	v, _, ok := e.s.lookup(name)
	return v, ok
}

func (e scopeEnv) Call(name string, args []expr.Value) (expr.Value, error) {
	return expr.CallBuiltin(name, args)
}

// instantiate expands one component in place and returns it.
func (r *Resolver) instantiate(c *model.Component, parent *scope, depth int) (*model.Component, error) {
	if depth > r.MaxDepth {
		return nil, errf(c, "meta-model nesting exceeds %d levels (reference cycle?)", r.MaxDepth)
	}

	// 1.+2. Merge the flattened meta-model referenced by type=.
	if c.Type != "" {
		meta, err := r.flatten(c.Type, depth)
		if err != nil {
			// Unresolvable type references on leaf components whose type
			// is pure data (e.g. memory type="DDR3" where no DDR3
			// descriptor exists) degrade to a tag, matching the paper's
			// use of type as both reference and classification.
			if !isLeafTypeTag(c) {
				return nil, errf(c, "cannot resolve type %q: %v", c.Type, err)
			}
		} else {
			merged := mergeMetaInstance(meta, c)
			*c = *merged
		}
	}
	// Flatten local extends= (a meta-model defined in-line).
	if len(c.Extends) > 0 {
		base, err := r.flattenExtends(c, depth)
		if err != nil {
			return nil, err
		}
		*c = *base
	}

	sc := &scope{parent: parent, comp: c}

	// 3. Substitute param/const references in attribute values.
	if err := r.substituteAttrs(c, sc); err != nil {
		return nil, err
	}

	// Children of a power domain are references to hardware entities by
	// type or id (Listing 12: <core type="Leon"/>), not meta-model
	// instantiations — keep them verbatim.
	if c.Kind == "power_domain" {
		return c, r.checkConstraints(c, sc)
	}

	// 4.+recursion: expand groups and instantiate children.
	var children []*model.Component
	for _, ch := range c.Children {
		expanded, err := r.expandChild(ch, sc, depth)
		if err != nil {
			return nil, err
		}
		children = append(children, expanded...)
	}
	c.Children = children

	// 5. Check constraints that are fully bound.
	if err := r.checkConstraints(c, sc); err != nil {
		return nil, err
	}
	return c, nil
}

// isLeafTypeTag reports whether the component's type= can act as a
// plain classification tag when no meta-model of that name exists.
func isLeafTypeTag(c *model.Component) bool {
	switch c.Kind {
	case "memory", "hostOS", "installed", "programming_model", "property":
		return true
	default:
		return false
	}
}

// expandChild instantiates one child, expanding quantity-groups into
// member replicas.
func (r *Resolver) expandChild(ch *model.Component, sc *scope, depth int) ([]*model.Component, error) {
	if ch.Kind == "group" && ch.Quantity != "" {
		n, err := r.evalQuantity(ch, sc)
		if err != nil {
			return nil, err
		}
		container := model.New("group")
		container.Name, container.ID, container.Prefix = ch.Name, ch.ID, ch.Prefix
		container.Pos = ch.Pos
		container.Attrs = ch.Attrs
		base := memberBaseName(ch)
		mkMember := func(i int) *model.Component {
			member := model.New("group")
			member.ID = fmt.Sprintf("%s%d", base, i)
			member.Pos = ch.Pos
			for _, gc := range ch.Children {
				member.Children = append(member.Children, gc.Clone())
			}
			member.Params = cloneParams(ch.Params)
			member.Consts = cloneConsts(ch.Consts)
			return member
		}
		mGroupsExpanded.Inc()
		mGroupMembers.Add(int64(n))
		members := make([]*model.Component, n)
		if r.Workers > 1 && n >= r.ParallelThreshold && templateCost(ch)*n >= r.MinParallelCost {
			mParallelExpansions.Inc()
			if err := r.expandParallel(members, mkMember, sc, depth); err != nil {
				return nil, err
			}
		} else {
			for i := 0; i < n; i++ {
				inst, err := r.instantiate(mkMember(i), sc, depth+1)
				if err != nil {
					return nil, err
				}
				members[i] = inst
			}
		}
		container.Children = members
		return []*model.Component{container}, nil
	}
	inst, err := r.instantiate(ch, sc, depth+1)
	if err != nil {
		return nil, err
	}
	return []*model.Component{inst}, nil
}

// expandParallel instantiates group members over a worker pool. The
// first member runs serially so that all meta-models its structure
// references are flattened into the cache; the remaining replicas are
// structurally identical, so the workers' cache snapshots are complete
// and no locking is needed on the shared state. Each worker gets its
// own Resolver view over a snapshot of the flatten cache.
func (r *Resolver) expandParallel(members []*model.Component, mkMember func(int) *model.Component, sc *scope, depth int) error {
	first, err := r.instantiate(mkMember(0), sc, depth+1)
	if err != nil {
		return err
	}
	members[0] = first
	if len(members) == 1 {
		return nil
	}
	workers := r.Workers
	if workers > len(members)-1 {
		workers = len(members) - 1
	}
	// Buffered so submission never blocks even if all workers bail out
	// early on an error.
	jobs := make(chan int, len(members)-1)
	for i := 1; i < len(members); i++ {
		jobs <- i
	}
	close(jobs)
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Private resolver view: snapshot of the (now warm) cache.
			view := &Resolver{
				Repo: r.Repo, MaxDepth: r.MaxDepth,
				ParallelThreshold: r.ParallelThreshold,
				MinParallelCost:   r.MinParallelCost,
				flatCache:         make(map[string]*model.Component, len(r.flatCache)),
				visiting:          map[string]bool{},
			}
			for k, v := range r.flatCache {
				view.flatCache[k] = v
			}
			for i := range jobs {
				inst, err := view.instantiate(mkMember(i), sc, depth+1)
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
				members[i] = inst
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// templateCost estimates the per-member expansion work of a group: the
// element count of the template, with type references weighted heavily
// because they pull in whole meta-model subtrees.
func templateCost(g *model.Component) int {
	cost := 0
	for _, ch := range g.Children {
		ch.Walk(func(x *model.Component) bool {
			cost++
			if x.Type != "" {
				cost += 16
			}
			if x.Kind == "group" && x.Quantity != "" {
				cost += 8
			}
			return true
		})
	}
	return cost
}

// memberBaseName picks the identifier stem for group members: the
// explicit prefix if given (Listing 1), else the group's own name/id,
// else "member".
func memberBaseName(g *model.Component) string {
	switch {
	case g.Prefix != "":
		return g.Prefix
	case g.Name != "":
		return g.Name
	case g.ID != "":
		return g.ID
	default:
		return "member"
	}
}

func (r *Resolver) evalQuantity(g *model.Component, sc *scope) (int, error) {
	if n, err := strconv.Atoi(strings.TrimSpace(g.Quantity)); err == nil {
		if n < 0 {
			return 0, errf(g, "negative group quantity %d", n)
		}
		return n, nil
	}
	v, err := expr.Eval(g.Quantity, scopeEnv{sc})
	if err != nil {
		return 0, errf(g, "cannot evaluate quantity %q: %v", g.Quantity, err)
	}
	if v.Kind != expr.KindNumber || v.Num < 0 || v.Num != float64(int(v.Num)) {
		return 0, errf(g, "quantity %q = %s is not a non-negative integer", g.Quantity, v.GoString())
	}
	return int(v.Num), nil
}

// substituteAttrs replaces attribute values that name a bound param or
// const with the binding's value, normalizing units.
func (r *Resolver) substituteAttrs(c *model.Component, sc *scope) error {
	for name, a := range c.Attrs {
		if a.HasQuantity || a.Unknown || a.Raw == "" {
			continue
		}
		if !isIdentLike(a.Raw) {
			continue
		}
		v, unit, ok := sc.lookup(a.Raw)
		if !ok {
			// Not a param reference — leave strings like endian="LE"
			// untouched. But a declared-yet-unbound param used as an
			// attribute value on an instance is an error.
			if sc.declared(a.Raw) && !c.IsMeta() {
				return errf(c, "attribute %s references unbound parameter %q", name, a.Raw)
			}
			continue
		}
		applyBinding(c, name, a, v, unit)
	}
	return nil
}

// applyBinding rewrites one attribute from a resolved binding value —
// the single substitution path shared by initial resolution and the
// sweep fast path (Rebind), so both produce bit-identical attributes.
func applyBinding(c *model.Component, name string, a model.Attr, v expr.Value, unit string) {
	if v.Kind == expr.KindNumber {
		dim := units.DimensionForAttr(name)
		if unit != "" {
			if d, _, err := units.ParseUnit(unit); err == nil && d != units.Dimensionless {
				dim = d
			}
		} else if a.Unit != "" {
			// The attribute carries its own unit for a bare-number
			// binding (Listing 8: frequency="cfrq" frequency_unit="MHz"
			// with cfrq bound to 706 without a unit).
			if q, err := units.Parse(strconv.FormatFloat(v.Num, 'g', -1, 64), a.Unit); err == nil {
				c.SetAttr(name, model.Attr{Raw: a.Raw, Unit: a.Unit, Quantity: q, HasQuantity: true})
				return
			}
		}
		c.SetAttr(name, model.Attr{
			Raw: a.Raw, Unit: unit,
			Quantity:    units.Quantity{Value: v.Num, Dim: dim},
			HasQuantity: true,
		})
	} else {
		c.SetAttr(name, model.Attr{Raw: v.Str})
	}
}

// IdentLike reports whether s has the shape of a parameter or
// constant reference (an identifier: letter or underscore first, then
// letters, digits, underscores and dots) — the same test the resolver
// applies before attempting scope substitution on an attribute value.
// The incremental re-resolution layer uses it to recognize attribute
// values that may be rewritten by parameter substitution, which a
// descriptor-level patch cannot reproduce.
func IdentLike(s string) bool { return isIdentLike(s) }

func isIdentLike(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		ch := s[i]
		ok := ch == '_' || ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || (i > 0 && (ch >= '0' && ch <= '9' || ch == '.'))
		if !ok {
			return false
		}
	}
	return true
}

func (r *Resolver) checkConstraints(c *model.Component, sc *scope) error {
	return checkConstraintsFiltered(c, sc, nil)
}

// checkConstraintsFiltered is the constraint/range pass. A nil filter
// checks everything (initial resolution); a non-nil filter — the sweep
// fast path — checks only constraints whose identifiers intersect the
// filtered names and ranges of the filtered parameters, which is sound
// when everything outside the filter already passed on the base tree.
// Error messages and ordering match the unfiltered pass among the
// checks both perform, so both report the same first violation.
func checkConstraintsFiltered(c *model.Component, sc *scope, filter map[string]bool) error {
	for _, cons := range c.Constraints {
		node, err := expr.Compile(cons.Expr)
		if err != nil {
			return errf(c, "constraint %q: %v", cons.Expr, err)
		}
		ids := expr.Idents(node)
		if filter != nil && !intersects(ids, filter) {
			continue
		}
		allBound := true
		for _, id := range ids {
			if _, _, ok := sc.lookup(id); !ok {
				allBound = false
				break
			}
		}
		if !allBound {
			if c.IsMeta() {
				continue // generic meta-model; checked when instantiated
			}
			return errf(c, "constraint %q references unbound parameters", cons.Expr)
		}
		v, err := expr.EvalNode(node, scopeEnv{sc})
		if err != nil {
			return errf(c, "constraint %q: %v", cons.Expr, err)
		}
		if !v.Truthy() {
			e := errf(c, "constraint violated: %s", cons.Expr)
			e.Violation = true
			return e
		}
	}
	// Range checks for bound params.
	for _, p := range c.Params {
		if !p.Bound() || len(p.Range) == 0 {
			continue
		}
		if filter != nil && !filter[p.Name] {
			continue
		}
		if !rangeContains(p.Range, p.Value) {
			e := errf(c, "parameter %s=%s outside legal range %v", p.Name, p.Value, p.Range)
			e.Violation = true
			return e
		}
	}
	return nil
}

func intersects(ids []string, names map[string]bool) bool {
	for _, id := range ids {
		if names[id] {
			return true
		}
	}
	return false
}

func rangeContains(rng []string, val string) bool {
	fv, numErr := strconv.ParseFloat(strings.TrimSpace(val), 64)
	for _, r := range rng {
		if r == val {
			return true
		}
		if numErr == nil {
			if rv, err := strconv.ParseFloat(r, 64); err == nil && rv == fv {
				return true
			}
		}
	}
	return false
}

// flatten resolves a meta-model by name and merges its inheritance
// chain. Results are memoized; the returned tree is shared, callers
// must clone before mutating.
func (r *Resolver) flatten(name string, depth int) (*model.Component, error) {
	if flat, ok := r.flatCache[name]; ok {
		mFlattenHits.Inc()
		return flat, nil
	}
	mFlattenMisses.Inc()
	if r.visiting[name] {
		return nil, fmt.Errorf("inheritance cycle through %q", name)
	}
	if depth > r.MaxDepth {
		return nil, fmt.Errorf("meta-model nesting exceeds %d levels", r.MaxDepth)
	}
	raw, err := r.Repo.Load(name)
	if err != nil {
		return nil, err
	}
	r.visiting[name] = true
	defer delete(r.visiting, name)

	flat, err := r.flattenExtends(raw.Clone(), depth)
	if err != nil {
		return nil, err
	}
	r.flatCache[name] = flat
	return flat, nil
}

// flattenExtends merges c's supertypes (left to right) under c, so that
// later supertypes and finally c itself override earlier definitions.
func (r *Resolver) flattenExtends(c *model.Component, depth int) (*model.Component, error) {
	if len(c.Extends) == 0 {
		return c, nil
	}
	supers := c.Extends
	merged := model.New(c.Kind)
	merged.Pos = c.Pos
	for _, sup := range supers {
		base, err := r.flatten(sup, depth+1)
		if err != nil {
			return nil, errf(c, "cannot resolve supertype %q: %v", sup, err)
		}
		merged = mergeOver(merged, base.Clone())
	}
	c.Extends = nil
	out := mergeOver(merged, c)
	return out, nil
}

// mergeOver merges `over` on top of `base`: over's identity, attributes
// and bindings win; children are concatenated base-first; constraints
// accumulate.
func mergeOver(base, over *model.Component) *model.Component {
	out := base
	if over.Kind != "" {
		out.Kind = over.Kind
	}
	out.Name, out.ID, out.Type = over.Name, over.ID, over.Type
	out.Prefix, out.Quantity = coalesce(over.Prefix, base.Prefix), coalesce(over.Quantity, base.Quantity)
	if over.Pos.IsValid() {
		out.Pos = over.Pos
	}
	for k, v := range over.Attrs {
		out.SetAttr(k, v)
	}
	// Params merge by name: the overriding side contributes bindings,
	// the base keeps declaration metadata (type, range, configurable).
	for _, p := range over.Params {
		if bp := out.Param(p.Name); bp != nil {
			if p.Bound() {
				bp.Value, bp.Unit = p.Value, p.Unit
			}
			if p.Type != "" {
				bp.Type = p.Type
			}
			if len(p.Range) > 0 {
				bp.Range = p.Range
			}
			if p.Configurable {
				bp.Configurable = true
			}
		} else {
			q := *p
			q.Range = append([]string(nil), p.Range...)
			out.Params = append(out.Params, &q)
		}
	}
	for _, k := range over.Consts {
		if bc := out.Const(k.Name); bc != nil {
			if k.Value != "" {
				bc.Value, bc.Unit = k.Value, k.Unit
			}
		} else {
			q := *k
			out.Consts = append(out.Consts, &q)
		}
	}
	out.Constraints = append(out.Constraints, over.Constraints...)
	out.Properties = append(out.Properties, over.Properties...)
	out.Children = append(out.Children, over.Children...)
	return out
}

func coalesce(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// mergeMetaInstance merges a flattened meta-model into an instance that
// references it with type=: the instance keeps its identity, overrides
// attributes and parameter bindings, and appends its own children after
// the meta's structural children.
func mergeMetaInstance(meta, inst *model.Component) *model.Component {
	base := meta.Clone()
	base.Name = "" // the result is an instance, not a meta-model
	out := mergeOver(base, inst)
	out.Type = inst.Type // keep the type tag for query/introspection
	return out
}

func cloneParams(ps []*model.Param) []*model.Param {
	out := make([]*model.Param, len(ps))
	for i, p := range ps {
		q := *p
		q.Range = append([]string(nil), p.Range...)
		out[i] = &q
	}
	return out
}

func cloneConsts(cs []*model.Const) []*model.Const {
	out := make([]*model.Const, len(cs))
	for i, c := range cs {
		q := *c
		out[i] = &q
	}
	return out
}

// checkEndpoints verifies that every interconnect instance's head/tail
// references an id that exists in the composed tree (Listing 4: the
// connection information must be specified for interconnect instances).
func (r *Resolver) checkEndpoints(root *model.Component) error {
	ids := map[string]bool{}
	root.Walk(func(c *model.Component) bool {
		if c.ID != "" {
			ids[c.ID] = true
		}
		return true
	})
	var firstErr error
	root.Walk(func(c *model.Component) bool {
		if firstErr != nil {
			return false
		}
		if c.Kind != "interconnect" || c.IsMeta() {
			return true
		}
		for _, end := range []string{"head", "tail"} {
			ref := c.AttrRaw(end)
			if ref == "" {
				continue
			}
			if !ids[ref] {
				firstErr = errf(c, "%s endpoint %q does not exist in the composed model", end, ref)
				return false
			}
		}
		return true
	})
	return firstErr
}

// FindByPath resolves a slash-separated instance path like
// "n0/gpu1" from the root, where each segment matches a descendant id
// (searched breadth-first below the previous match). It disambiguates
// replicated ids such as the per-node gpu1 devices of a cluster.
func FindByPath(root *model.Component, path string) *model.Component {
	cur := root
	for _, seg := range strings.Split(path, "/") {
		if seg == "" {
			continue
		}
		next := cur.FindByID(seg)
		if next == nil || next == cur {
			return nil
		}
		cur = next
	}
	return cur
}
