package resolve

import (
	"fmt"
	"strings"

	"xpdl/internal/expr"
	"xpdl/internal/model"
)

// This file implements bounded re-binding: replaying parameter
// substitution and constraint checking on an already-resolved tree for
// a new set of parameter values, without re-running composition. It is
// the sweep engine's fast path — a grid of attribute-only parameter
// points pays for meta-model flattening, type instantiation and group
// expansion once (the base resolve) and then patches each point onto a
// clone, the same idea the delta layer applies to descriptor edits.
//
// Soundness requires that the overrides cannot change the tree's
// shape: no swept name may appear in a group quantity expression (see
// StructureSensitive) and every overridden binding must stay numeric
// (string substitution replaces Attr.Raw with the value, losing the
// parameter reference a later rebind would need). The engine checks
// both before choosing this path.

// Override binds one parameter for a sweep point.
type Override struct {
	// Target selects the components to bind on, by Ident(); "" targets
	// the root. A group whose Ident is empty matches its Prefix instead
	// (anonymous replica groups like <group prefix="n" quantity="4">).
	Target string
	// Name is the parameter to bind. The special name "quantity"
	// replaces a group's replication count instead of a parameter —
	// structural by definition, so it is rejected by Rebind and forces
	// the full-resolve path.
	Name string
	// Value is the raw binding, normalized exactly like a descriptor
	// binding (units.Parse with Unit when set, bare number, string).
	Value string
	// Unit qualifies Value ("" for bare numbers/strings).
	Unit string
}

// targetMatches reports whether component c is addressed by target.
func targetMatches(c *model.Component, target string, isRoot bool) bool {
	if target == "" {
		return isRoot
	}
	if c.Ident() == target {
		return true
	}
	return c.Kind == "group" && c.Ident() == "" && c.Prefix == target
}

// ApplyOverrides binds each override onto the tree in place: every
// component matching the override's Target gets the parameter bound
// (added when not declared), mirroring how an instance binding merges
// over a meta declaration. It works on concrete trees (before
// Instantiate, the full path) and on resolved trees (Rebind's first
// step). An override whose target matches no component is an error.
func ApplyOverrides(root *model.Component, ovs []Override) error {
	matched := make([]bool, len(ovs))
	var walk func(c *model.Component, isRoot bool)
	walk = func(c *model.Component, isRoot bool) {
		for i := range ovs {
			o := &ovs[i]
			if !targetMatches(c, o.Target, isRoot) {
				continue
			}
			if o.Name == "quantity" {
				if c.Kind != "group" {
					continue // quantity overrides address groups only
				}
				c.Quantity = o.Value
				matched[i] = true
				continue
			}
			bindParam(c, o.Name, o.Value, o.Unit)
			matched[i] = true
		}
		for _, ch := range c.Children {
			walk(ch, false)
		}
	}
	walk(root, true)
	for i, ok := range matched {
		if !ok {
			target := ovs[i].Target
			if target == "" {
				target = "<root>"
			}
			return fmt.Errorf("resolve: override %s: target %q matches no component", ovs[i].Name, target)
		}
	}
	return nil
}

// bindParam sets (or adds) a parameter binding, with the same override
// semantics as mergeOver: the new value and unit replace the old ones
// unconditionally, declaration metadata (type, range) is kept.
func bindParam(c *model.Component, name, value, unit string) {
	if p := c.Param(name); p != nil {
		p.Value, p.Unit = value, unit
		return
	}
	c.Params = append(c.Params, &model.Param{Name: name, Value: value, Unit: unit})
}

// Rebind replays parameter substitution and constraint checking on an
// already-resolved tree for the given overrides, in place. The tree
// must come from a successful Instantiate of the same model; only
// attributes already substituted from one of the overridden names are
// recomputed, and only constraints/ranges that mention them re-checked.
// On a violation the returned error has resolve.Error.Violation set,
// exactly as a full resolve of the same point would.
func Rebind(root *model.Component, ovs []Override) error {
	names := map[string]bool{}
	for i := range ovs {
		if ovs[i].Name == "quantity" {
			return fmt.Errorf("resolve: rebind: quantity override %q is structural; use a full resolve", ovs[i].Target)
		}
		names[ovs[i].Name] = true
	}
	if err := ApplyOverrides(root, ovs); err != nil {
		return err
	}
	return rebindWalk(root, nil, names)
}

// rebindWalk mirrors instantiate's per-component order — substitute
// attributes, recurse into children, then check constraints — so a
// point with several violations reports the same first one on either
// path.
func rebindWalk(c *model.Component, parent *scope, names map[string]bool) error {
	sc := &scope{parent: parent, comp: c}
	for name, a := range c.Attrs {
		// Only attributes that initial resolution already rewrote from a
		// swept parameter: substituted numeric attributes keep the
		// parameter reference in Raw alongside HasQuantity.
		if !a.HasQuantity || !names[a.Raw] || !isIdentLike(a.Raw) {
			continue
		}
		v, unit, ok := sc.lookup(a.Raw)
		if !ok {
			return errf(c, "attribute %s references unbound parameter %q", name, a.Raw)
		}
		applyBinding(c, name, a, v, unit)
	}
	// Power-domain children are verbatim references, never instantiated
	// (and never substituted) — same early-out as instantiate.
	if c.Kind != "power_domain" {
		for _, ch := range c.Children {
			if err := rebindWalk(ch, sc, names); err != nil {
				return err
			}
		}
	}
	return checkConstraintsFiltered(c, sc, names)
}

// StructureSensitive reports whether binding any of the named
// parameters differently could change the shape of the resolved tree:
// a group quantity expression in any of the given trees (the concrete
// root plus every flattened meta-model it pulled in) references one of
// the names. Unparseable quantity expressions count as sensitive —
// when in doubt, take the full-resolve path.
func StructureSensitive(names map[string]bool, trees ...*model.Component) bool {
	for _, t := range trees {
		sensitive := false
		t.Walk(func(c *model.Component) bool {
			if c.Kind != "group" || c.Quantity == "" {
				return !sensitive
			}
			q := strings.TrimSpace(c.Quantity)
			if isIntLiteral(q) {
				return !sensitive
			}
			node, err := expr.Compile(q)
			if err != nil {
				sensitive = true
				return false
			}
			if intersects(expr.Idents(node), names) {
				sensitive = true
				return false
			}
			return !sensitive
		})
		if sensitive {
			return true
		}
	}
	return false
}

func isIntLiteral(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
