// Package mapping implements an energy-aware task mapper on top of the
// XPDL runtime query API — an instance of the "upper optimization
// layers" of the EXCESS framework that Section IV says the query API
// must serve: deciding task placement onto CPUs and accelerators using
// the platform model's frequencies, core counts, power figures and
// interconnect transfer costs.
//
// Two policies are provided: a performance-greedy mapper (earliest
// completion time) and an energy-greedy mapper that minimizes energy
// subject to a makespan deadline. Comparing them quantifies the value
// of having energy attributes in the platform description at all —
// XPDL's reason to exist.
package mapping

import (
	"fmt"
	"math"
	"sort"

	"xpdl/internal/energy"
	"xpdl/internal/query"
)

// Task is one schedulable unit of work.
type Task struct {
	Name string
	// Cycles of compute on a single reference core.
	Cycles float64
	// Bytes moved to/from an accelerator if placed off-host.
	Bytes int64
	// Parallelizable tasks use all cores of a CPU target; otherwise one.
	Parallelizable bool
	// Speedup is the accelerator throughput multiplier relative to one
	// reference core (how much faster a GPU streams this kernel).
	Speedup float64
}

// Target is an execution resource extracted from the platform model.
type Target struct {
	ID     string
	Kind   string // "cpu" or "device"
	FreqHz float64
	Cores  int
	// PowerW is the active power drawn while executing.
	PowerW float64
	// Transfer is the host<->target channel cost; zero-valued for CPUs.
	Transfer energy.TransferCost
}

// TargetsFromSession extracts the execution targets from a loaded
// platform model: every CPU and every CUDA device, with frequencies,
// core counts, power figures, and the PCIe channel costs of the
// interconnect that reaches the device.
func TargetsFromSession(s *query.Session) []Target {
	var out []Target
	root := s.Root()
	if !root.Valid() {
		return nil
	}
	// Map device id -> channel cost from interconnect instances.
	chanCost := map[string]energy.TransferCost{}
	for _, ic := range root.Descendants("interconnect") {
		tail, _ := ic.GetString("tail")
		if tail == "" {
			continue
		}
		chans := ic.ChildrenOfKind("channel")
		pick := ic
		if len(chans) > 0 {
			pick = chans[0]
		}
		tc := transferFromElem(pick)
		if tc.BandwidthBps > 0 || tc.EnergyPerB > 0 {
			chanCost[tail] = tc
		}
	}
	for _, cpu := range root.Descendants("cpu") {
		t := Target{ID: cpu.Ident(), Kind: "cpu", FreqHz: 2e9, Cores: 1, PowerW: 40}
		if f, ok := cpu.GetFloat("frequency"); ok && f > 0 {
			t.FreqHz = f
		} else if cores := cpu.Descendants("core"); len(cores) > 0 {
			if f, ok := cores[0].GetFloat("frequency"); ok && f > 0 {
				t.FreqHz = f
			}
		}
		if n := cpu.NumCores(); n > 0 {
			t.Cores = n
		}
		if p, ok := cpu.GetFloat("static_power"); ok && p > 0 {
			// Rough active power: 2.5x idle package power.
			t.PowerW = 2.5 * p
		}
		out = append(out, t)
	}
	for _, dev := range root.Descendants("device") {
		pm, ok := dev.FirstChild("programming_model")
		if !ok {
			continue
		}
		if typ, ok := pm.GetString("type"); !ok || !containsCUDA(typ) {
			continue
		}
		t := Target{ID: dev.Ident(), Kind: "device", FreqHz: 700e6, Cores: 1, PowerW: 120}
		if cores := dev.Descendants("core"); len(cores) > 0 {
			t.Cores = len(cores)
			if f, ok := cores[0].GetFloat("frequency"); ok && f > 0 {
				t.FreqHz = f
			}
		}
		if p, ok := dev.GetFloat("static_power"); ok && p > 0 {
			t.PowerW = 5 * p
		}
		t.Transfer = chanCost[t.ID]
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func transferFromElem(e query.Elem) energy.TransferCost {
	var tc energy.TransferCost
	if v, ok := e.GetFloat("effective_bandwidth"); ok && v > 0 {
		tc.BandwidthBps = v
	} else if v, ok := e.GetFloat("max_bandwidth"); ok && v > 0 {
		tc.BandwidthBps = v
	}
	if v, ok := e.GetFloat("time_offset_per_message"); ok {
		tc.TimeOffsetS = v
	}
	if v, ok := e.GetFloat("energy_per_byte"); ok {
		tc.EnergyPerB = v
	}
	if v, ok := e.GetFloat("energy_offset_per_message"); ok {
		tc.EnergyOffJ = v
	}
	return tc
}

func containsCUDA(s string) bool {
	for i := 0; i+3 < len(s); i++ {
		if (s[i] == 'c' || s[i] == 'C') && (s[i+1] == 'u' || s[i+1] == 'U') &&
			(s[i+2] == 'd' || s[i+2] == 'D') && (s[i+3] == 'a' || s[i+3] == 'A') {
			return true
		}
	}
	return false
}

// Estimate predicts the (time, energy) of running the task on the
// target, including transfer costs for off-host placement.
func Estimate(t Task, g Target) (timeS, energyJ float64) {
	eff := g.FreqHz
	switch g.Kind {
	case "cpu":
		if t.Parallelizable && g.Cores > 1 {
			// Sublinear scaling: 80% parallel efficiency.
			eff *= 1 + 0.8*float64(g.Cores-1)
		}
	case "device":
		sp := t.Speedup
		if sp <= 0 {
			sp = 8
		}
		eff *= sp
	}
	timeS = t.Cycles / eff
	energyJ = g.PowerW * timeS
	if g.Kind == "device" && t.Bytes > 0 {
		tt, te := g.Transfer.Cost(t.Bytes, 1)
		timeS += tt
		energyJ += te
	}
	return timeS, energyJ
}

// Assignment is the result of a mapping policy.
type Assignment struct {
	Policy string
	// Placement maps task name to target id.
	Placement map[string]string
	// MakespanS is the latest target completion time.
	MakespanS float64
	// EnergyJ is the total execution energy.
	EnergyJ float64
	// Loads is the per-target busy time.
	Loads map[string]float64
}

// MapGreedyTime assigns each task (in order) to the target with the
// earliest completion time — the performance-only baseline.
func MapGreedyTime(tasks []Task, targets []Target) (Assignment, error) {
	return mapGreedy("greedy-time", tasks, targets, 0, false)
}

// MapGreedyEnergy assigns each task to the target minimizing its energy
// among placements that keep the projected makespan within the deadline
// (0 = no deadline). Infeasible tasks fall back to the fastest
// placement.
func MapGreedyEnergy(tasks []Task, targets []Target, deadlineS float64) (Assignment, error) {
	return mapGreedy("greedy-energy", tasks, targets, deadlineS, true)
}

func mapGreedy(policy string, tasks []Task, targets []Target, deadlineS float64, energyFirst bool) (Assignment, error) {
	if len(targets) == 0 {
		return Assignment{}, fmt.Errorf("mapping: no execution targets")
	}
	a := Assignment{
		Policy:    policy,
		Placement: map[string]string{},
		Loads:     map[string]float64{},
	}
	for _, t := range tasks {
		bestIdx := -1
		bestKey := math.MaxFloat64
		fastIdx, fastDone := -1, math.MaxFloat64
		for i, g := range targets {
			dt, de := Estimate(t, g)
			done := a.Loads[g.ID] + dt
			if done < fastDone {
				fastIdx, fastDone = i, done
			}
			var key float64
			if energyFirst {
				if deadlineS > 0 && done > deadlineS {
					continue // would bust the deadline
				}
				key = de
			} else {
				key = done
			}
			if key < bestKey {
				bestIdx, bestKey = i, key
			}
		}
		if bestIdx < 0 {
			bestIdx = fastIdx // no deadline-respecting choice; go fast
		}
		g := targets[bestIdx]
		dt, de := Estimate(t, g)
		a.Placement[t.Name] = g.ID
		a.Loads[g.ID] += dt
		a.EnergyJ += de
		if a.Loads[g.ID] > a.MakespanS {
			a.MakespanS = a.Loads[g.ID]
		}
	}
	return a, nil
}

// String renders the assignment for tool output.
func (a Assignment) String() string {
	return fmt.Sprintf("[%s] makespan=%.4gs energy=%.4gJ over %d target(s)",
		a.Policy, a.MakespanS, a.EnergyJ, len(a.Loads))
}
