package mapping

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"xpdl/internal/core"
	"xpdl/internal/energy"
	"xpdl/internal/query"
)

func liuSession(t *testing.T) *query.Session {
	t.Helper()
	_, file, _, _ := runtime.Caller(0)
	models := filepath.Join(filepath.Dir(file), "..", "..", "models")
	tc, err := core.New(core.Options{SearchPaths: []string{models}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tc.Process("liu_gpu_server")
	if err != nil {
		t.Fatal(err)
	}
	return query.NewSession(res.Runtime)
}

func TestTargetsFromLiuServer(t *testing.T) {
	s := liuSession(t)
	targets := TargetsFromSession(s)
	if len(targets) != 2 {
		t.Fatalf("targets = %+v", targets)
	}
	var cpu, gpu *Target
	for i := range targets {
		switch targets[i].Kind {
		case "cpu":
			cpu = &targets[i]
		case "device":
			gpu = &targets[i]
		}
	}
	if cpu == nil || gpu == nil {
		t.Fatalf("missing target kinds: %+v", targets)
	}
	if cpu.ID != "gpu_host" || cpu.Cores != 4 || cpu.FreqHz != 2e9 {
		t.Fatalf("cpu target = %+v", cpu)
	}
	if gpu.ID != "gpu1" || gpu.Cores != 13*192 {
		t.Fatalf("gpu target = %+v", gpu)
	}
	// PCIe channel costs were attached from the interconnect.
	if gpu.Transfer.BandwidthBps == 0 || gpu.Transfer.EnergyPerB == 0 {
		t.Fatalf("gpu transfer cost missing: %+v", gpu.Transfer)
	}
}

func syntheticTargets() []Target {
	return []Target{
		{ID: "cpu0", Kind: "cpu", FreqHz: 2e9, Cores: 4, PowerW: 40},
		{ID: "gpu0", Kind: "device", FreqHz: 0.7e9, Cores: 2496, PowerW: 150,
			Transfer: energy.TransferCost{BandwidthBps: 6 * (1 << 30), EnergyPerB: 8e-12, TimeOffsetS: 30e-6}},
	}
}

func TestEstimate(t *testing.T) {
	targets := syntheticTargets()
	small := Task{Name: "small", Cycles: 2e5, Bytes: 1 << 20, Speedup: 20}
	big := Task{Name: "big", Cycles: 5e10, Bytes: 1 << 20, Speedup: 20, Parallelizable: true}

	cpuT, cpuE := Estimate(small, targets[0])
	gpuT, gpuE := Estimate(small, targets[1])
	// A tiny task is faster on the CPU: the GPU pays the transfer.
	if cpuT >= gpuT {
		t.Fatalf("small task: cpu %g vs gpu %g", cpuT, gpuT)
	}
	if cpuE <= 0 || gpuE <= 0 {
		t.Fatal("degenerate energies")
	}
	// A large parallel task is faster on the GPU.
	cpuT, _ = Estimate(big, targets[0])
	gpuT, _ = Estimate(big, targets[1])
	if gpuT >= cpuT {
		t.Fatalf("big task: gpu %g vs cpu %g", gpuT, cpuT)
	}
	// Parallelizable tasks speed up on multi-core CPUs.
	serial := Task{Name: "s", Cycles: 1e9}
	par := Task{Name: "p", Cycles: 1e9, Parallelizable: true}
	st, _ := Estimate(serial, targets[0])
	pt, _ := Estimate(par, targets[0])
	if pt >= st {
		t.Fatalf("parallel not faster: %g vs %g", pt, st)
	}
	// Default speedup applies when unset.
	d := Task{Name: "d", Cycles: 1e9}
	dt, _ := Estimate(d, targets[1])
	if dt <= 0 {
		t.Fatal("default speedup broken")
	}
}

func mixedTasks() []Task {
	var tasks []Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks,
			Task{Name: "small" + itoa(i), Cycles: 5e7, Bytes: 1 << 18, Speedup: 20},
			Task{Name: "big" + itoa(i), Cycles: 2e10, Bytes: 1 << 22, Speedup: 20, Parallelizable: true},
		)
	}
	return tasks
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestGreedyTimeSplitsWork(t *testing.T) {
	tasks := mixedTasks()
	a, err := MapGreedyTime(tasks, syntheticTargets())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Placement) != len(tasks) {
		t.Fatalf("placement incomplete: %v", a.Placement)
	}
	// Big tasks land on the GPU; work is split across both targets.
	if a.Placement["big0"] != "gpu0" {
		t.Fatalf("big0 on %s", a.Placement["big0"])
	}
	if len(a.Loads) != 2 {
		t.Fatalf("loads = %v", a.Loads)
	}
	if a.MakespanS <= 0 || a.EnergyJ <= 0 {
		t.Fatalf("degenerate assignment: %s", a)
	}
	if !strings.Contains(a.String(), "greedy-time") {
		t.Fatalf("String = %s", a)
	}
}

func TestGreedyEnergySavesEnergyUnderSlackDeadline(t *testing.T) {
	tasks := mixedTasks()
	targets := syntheticTargets()
	perf, err := MapGreedyTime(tasks, targets)
	if err != nil {
		t.Fatal(err)
	}
	// Generous deadline: the energy mapper may pick slower-but-cheaper
	// placements.
	eco, err := MapGreedyEnergy(tasks, targets, perf.MakespanS*4)
	if err != nil {
		t.Fatal(err)
	}
	if eco.EnergyJ > perf.EnergyJ {
		t.Fatalf("energy mapping worse: %g vs %g", eco.EnergyJ, perf.EnergyJ)
	}
	if eco.MakespanS > perf.MakespanS*4+1e-9 {
		t.Fatalf("deadline busted: %g", eco.MakespanS)
	}
	// Tight deadline: falls back toward the perf mapping but stays
	// feasible when possible.
	tight, err := MapGreedyEnergy(tasks, targets, perf.MakespanS*1.05)
	if err != nil {
		t.Fatal(err)
	}
	if tight.EnergyJ > perf.EnergyJ*1.5 {
		t.Fatalf("tight mapping energy exploded: %g vs %g", tight.EnergyJ, perf.EnergyJ)
	}
}

func TestGreedyEnergyNoDeadline(t *testing.T) {
	tasks := mixedTasks()
	a, err := MapGreedyEnergy(tasks, syntheticTargets(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Placement) != len(tasks) {
		t.Fatal("placement incomplete")
	}
}

func TestMappingErrors(t *testing.T) {
	if _, err := MapGreedyTime([]Task{{Name: "t", Cycles: 1}}, nil); err == nil {
		t.Fatal("no targets accepted")
	}
}

func TestEndToEndOnPlatformModel(t *testing.T) {
	s := liuSession(t)
	targets := TargetsFromSession(s)
	tasks := mixedTasks()
	perf, err := MapGreedyTime(tasks, targets)
	if err != nil {
		t.Fatal(err)
	}
	eco, err := MapGreedyEnergy(tasks, targets, perf.MakespanS*3)
	if err != nil {
		t.Fatal(err)
	}
	if eco.EnergyJ > perf.EnergyJ {
		t.Fatalf("platform-model energy mapping worse: %g vs %g", eco.EnergyJ, perf.EnergyJ)
	}
}
