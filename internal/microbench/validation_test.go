package microbench

import (
	"math"
	"testing"

	"xpdl/internal/energy"
	"xpdl/internal/simhw"
)

// TestEnergyModelPredictsSubstrate validates the whole energy-modeling
// chain end to end: bootstrap an instruction table from the simulated
// hardware, predict a workload's energy with energy.TaskEnergy, then run
// the same workload on the substrate and compare against its exact
// ground-truth accounting.
func TestEnergyModelPredictsSubstrate(t *testing.T) {
	m := simhw.NewX86(123)
	runner := NewRunner(m)
	tab := parseISA(t)
	suite := parseSuite(t)
	if _, err := runner.Bootstrap(tab, suite, true); err != nil {
		t.Fatal(err)
	}

	const fGHz = 3.0
	workload := map[string]int64{
		"fadd":  5_000_000,
		"fmul":  3_000_000,
		"mov":   8_000_000,
		"divsd": 500_000,
	}
	cpi := map[string]float64{"fadd": 1, "fmul": 1.5, "mov": 0.5, "divsd": 20}

	// Model prediction: dynamic energy + static residency.
	predE, predT, err := tab.TaskEnergy(energy.TaskSpec{
		InstCounts:    workload,
		FreqGHz:       fGHz,
		CyclesPerInst: cpi,
		StaticPowerW:  m.StaticAt(fGHz),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: execute on the substrate.
	if err := m.SetFrequency(fGHz); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	for inst, n := range workload {
		if err := m.Execute(inst, int(n)); err != nil {
			t.Fatal(err)
		}
	}
	trueE, trueT := m.TrueEnergy(), m.Clock()

	if rel := math.Abs(predT-trueT) / trueT; rel > 0.001 {
		t.Fatalf("time prediction off by %.3f%%: pred %g vs true %g", rel*100, predT, trueT)
	}
	if rel := math.Abs(predE-trueE) / trueE; rel > 0.03 {
		t.Fatalf("energy prediction off by %.2f%%: pred %g vs true %g", rel*100, predE, trueE)
	}
}

// TestBootstrapSeedStability: different seeds give slightly different
// measurements (meter noise) but all stay within the fidelity bound.
func TestBootstrapSeedStability(t *testing.T) {
	suite := parseSuite(t)
	for seed := int64(0); seed < 5; seed++ {
		tab := parseISA(t)
		runner := NewRunner(simhw.NewX86(seed))
		rep, err := runner.Bootstrap(tab, suite, false)
		if err != nil {
			t.Fatal(err)
		}
		if rep.MaxRelErr() > 0.10 {
			t.Errorf("seed %d: max rel err %.2f%%", seed, rep.MaxRelErr()*100)
		}
	}
}
