package microbench

import (
	"math"
	"strings"
	"testing"

	"xpdl/internal/energy"
	"xpdl/internal/parser"
	"xpdl/internal/simhw"
)

// listing15 reproduces the paper's microbenchmark suite example,
// extended with entries for every unknown instruction of Listing 14.
const listing15 = `
<microbenchmarks id="mb_x86_base_1" instruction_set="x86_base_isa" path="/usr/local/micr/src" command="mbscript.sh">
  <microbenchmark id="fa1" type="fadd" file="fadd.c" cflags="-O0" lflags="-lm" />
  <microbenchmark id="fm1" type="fmul" file="fmul.c" cflags="-O0" lflags="-lm" />
  <microbenchmark id="mo1" type="mov" file="mov.c" cflags="-O0" lflags="-lm" />
  <microbenchmark id="dv1" type="divsd" file="divsd.c" cflags="-O0" lflags="-lm" />
</microbenchmarks>`

const isaSrc = `
<instructions name="x86_base_isa" mb="mb_x86_base_1">
  <inst name="fmul" energy="?" energy_unit="pJ" mb="fm1"/>
  <inst name="fadd" energy="?" energy_unit="pJ" mb="fa1"/>
  <inst name="mov" energy="310" energy_unit="pJ" mb="mo1"/>
  <inst name="divsd" energy="?" energy_unit="nJ" mb="dv1"/>
</instructions>`

func parseSuite(t *testing.T) *Suite {
	t.Helper()
	p := parser.New()
	c, _, err := p.ParseFile("mb.xpdl", []byte(listing15))
	if err != nil {
		t.Fatal(err)
	}
	s, err := SuiteFromComponent(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func parseISA(t *testing.T) *energy.Table {
	t.Helper()
	p := parser.New()
	c, _, err := p.ParseFile("isa.xpdl", []byte(isaSrc))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := energy.TableFromComponent(c)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestSuiteFromListing15(t *testing.T) {
	s := parseSuite(t)
	if s.ID != "mb_x86_base_1" || s.InstructionSet != "x86_base_isa" ||
		s.Path != "/usr/local/micr/src" || s.Command != "mbscript.sh" {
		t.Fatalf("suite = %+v", s)
	}
	if len(s.Benchmarks) != 4 {
		t.Fatalf("benchmarks = %d", len(s.Benchmarks))
	}
	if b, ok := s.ByID("fa1"); !ok || b.Type != "fadd" || b.File != "fadd.c" || b.CFlags != "-O0" {
		t.Fatalf("fa1 = %+v %v", b, ok)
	}
	if _, ok := s.ByID("zz"); ok {
		t.Fatal("missing id found")
	}
	if b, ok := s.ForInstruction("divsd"); !ok || b.ID != "dv1" {
		t.Fatalf("divsd benchmark = %+v %v", b, ok)
	}
	if _, ok := s.ForInstruction("nop"); ok {
		t.Fatal("missing instruction benchmark found")
	}
}

func TestSuiteErrors(t *testing.T) {
	p := parser.New()
	bad := []string{
		`<cpu name="x"/>`,
		`<microbenchmarks id="s"><microbenchmark id="a" type="x"/><microbenchmark id="a" type="y"/></microbenchmarks>`,
	}
	for _, src := range bad {
		c, _, err := p.ParseFile("b.xpdl", []byte(src))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := SuiteFromComponent(c); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

func TestGenerateDrivers(t *testing.T) {
	s := parseSuite(t)
	files := GenerateDrivers(s, 500_000)
	// One C file per benchmark plus the script.
	if len(files) != 5 {
		t.Fatalf("files = %d: %v", len(files), keys(files))
	}
	fadd, ok := files["fadd.c"]
	if !ok {
		t.Fatal("fadd.c missing")
	}
	for _, want := range []string{"#define N 500000", `__asm__ volatile("fadd")`, "xpdl_meter_read", "xpdl_idle_energy"} {
		if !strings.Contains(fadd, want) {
			t.Errorf("fadd.c missing %q:\n%s", want, fadd)
		}
	}
	script, ok := files["mbscript.sh"]
	if !ok {
		t.Fatal("mbscript.sh missing")
	}
	for _, want := range []string{"#!/bin/sh", "cc -O0", "fadd.c", "divsd.c", "./fadd"} {
		if !strings.Contains(script, want) {
			t.Errorf("script missing %q:\n%s", want, script)
		}
	}
	// Default iteration count and default file naming.
	s2 := &Suite{ID: "s2", Benchmarks: []Benchmark{{ID: "b1", Type: "mov"}}}
	files2 := GenerateDrivers(s2, 0)
	if _, ok := files2["b1.c"]; !ok {
		t.Fatalf("default filename missing: %v", keys(files2))
	}
	if !strings.Contains(files2["b1.c"], "#define N 1000000") {
		t.Fatal("default iterations missing")
	}
	if _, ok := files2["mbscript.sh"]; !ok {
		t.Fatal("default script name missing")
	}
}

func keys(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestCalibrateInstAccuracy(t *testing.T) {
	m := simhw.NewX86(42)
	r := NewRunner(m)
	samples, err := r.CalibrateInst("divsd", m.Frequencies())
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 7 {
		t.Fatalf("samples = %d", len(samples))
	}
	for _, s := range samples {
		truth, _ := m.TrueEnergyPerInst("divsd", s.GHz)
		rel := math.Abs(s.J-truth) / truth
		if rel > 0.10 {
			t.Errorf("divsd@%.1f: derived %.4g vs truth %.4g (rel %.2f%%)",
				s.GHz, s.J, truth, rel*100)
		}
	}
	if _, err := r.CalibrateInst("bogus", m.Frequencies()); err == nil {
		t.Fatal("unknown instruction accepted")
	}
	if _, err := r.CalibrateInst("fadd", []float64{9.9}); err == nil {
		t.Fatal("off-level frequency accepted")
	}
	r.Iterations = 0
	if _, err := r.CalibrateInst("fadd", nil); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestBootstrapFillsUnknowns(t *testing.T) {
	m := simhw.NewX86(7)
	r := NewRunner(m)
	tab := parseISA(t)
	suite := parseSuite(t)
	if len(tab.Unknowns()) != 3 {
		t.Fatalf("unknowns before = %v", tab.Unknowns())
	}
	rep, err := r.Bootstrap(tab, suite, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Unknowns()) != 0 {
		t.Fatalf("unknowns after = %v", tab.Unknowns())
	}
	if len(rep.PerInst) != 3 {
		t.Fatalf("report entries = %d", len(rep.PerInst))
	}
	// The divsd table must now reproduce the paper's values within the
	// meter-noise tolerance.
	e, ok := tab.EnergyAt("divsd", 2.8)
	if !ok {
		t.Fatal("divsd still unknown")
	}
	if math.Abs(e-18.625e-9)/18.625e-9 > 0.10 {
		t.Fatalf("divsd@2.8 = %g, want ~18.625nJ", e)
	}
	// Fidelity: all instructions within 10% of ground truth.
	if rep.MaxRelErr() > 0.10 {
		t.Fatalf("max rel err = %.2f%%", rep.MaxRelErr()*100)
	}
	if !strings.Contains(rep.String(), "fmul") {
		t.Fatalf("report: %s", rep)
	}
	// mov keeps its given value (not re-benchmarked without force).
	e, _ = tab.EnergyAt("mov", 3.0)
	if math.Abs(e-310e-12) > 1e-18 {
		t.Fatalf("mov overridden without force: %g", e)
	}
}

func TestBootstrapForceOverrides(t *testing.T) {
	m := simhw.NewX86(9)
	r := NewRunner(m)
	tab := parseISA(t)
	suite := parseSuite(t)
	rep, err := r.Bootstrap(tab, suite, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerInst) != 4 {
		t.Fatalf("force should calibrate all 4, got %d", len(rep.PerInst))
	}
	// mov is now measured: close to the substrate truth (0.31 nJ at
	// 3 GHz), overriding the specified 310 pJ (which equals it — the
	// model file was written from the same ground truth).
	e, _ := tab.EnergyAt("mov", 3.0)
	truth, _ := m.TrueEnergyPerInst("mov", 3.0)
	if math.Abs(e-truth)/truth > 0.10 {
		t.Fatalf("mov measured = %g, truth %g", e, truth)
	}
}

func TestBootstrapMissingBenchmark(t *testing.T) {
	m := simhw.NewX86(3)
	r := NewRunner(m)
	tab := parseISA(t)
	// A suite without a divsd benchmark cannot calibrate it.
	p := parser.New()
	c, _, err := p.ParseFile("mb.xpdl", []byte(`
<microbenchmarks id="partial" instruction_set="x86_base_isa" path="/x" command="run.sh">
  <microbenchmark id="fa1" type="fadd" file="fadd.c"/>
  <microbenchmark id="fm1" type="fmul" file="fmul.c"/>
</microbenchmarks>`))
	if err != nil {
		t.Fatal(err)
	}
	suite, err := SuiteFromComponent(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Bootstrap(tab, suite, false); err == nil ||
		!strings.Contains(err.Error(), "divsd") {
		t.Fatalf("missing benchmark not reported: %v", err)
	}
}
