package microbench

import (
	"math"
	"testing"

	"xpdl/internal/parser"
	"xpdl/internal/simhw"
)

func TestCalibratePCIeUpLink(t *testing.T) {
	link := simhw.NewPCIe3UpLink(42)
	r := NewChannelRunner()
	res, err := r.Calibrate(link)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, want, tol float64) {
		t.Helper()
		if want == 0 {
			if math.Abs(got) > tol {
				t.Errorf("%s = %g, want ~0", name, got)
			}
			return
		}
		if rel := math.Abs(got-want) / want; rel > tol {
			t.Errorf("%s = %g, want %g (rel %.2f%%)", name, got, want, rel*100)
		}
	}
	check("bandwidth", res.BandwidthBps, 6*(1<<30), 0.02)
	check("time offset", res.TimeOffsetS, 500e-9, 0.05)
	check("energy/byte", res.EnergyPerB, 8e-12, 0.05)
	check("energy offset", res.EnergyOffJ, 120e-12, 0.20)
}

func TestCalibrateCustomLink(t *testing.T) {
	link := simhw.NewLink(7, 2*(1<<30), 1e-6, 4e-12, 500e-12)
	r := NewChannelRunner()
	res, err := r.Calibrate(link)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TimeOffsetS-1e-6)/1e-6 > 0.05 {
		t.Errorf("toff = %g", res.TimeOffsetS)
	}
	if math.Abs(res.EnergyOffJ-500e-12)/500e-12 > 0.10 {
		t.Errorf("eoff = %g", res.EnergyOffJ)
	}
}

func TestCalibrateBadConfig(t *testing.T) {
	link := simhw.NewPCIe3UpLink(1)
	bad := []*ChannelRunner{
		{SmallMessages: 0, LargeMessages: 1, SmallBytes: 1, LargeBytes: 2, Repeats: 1},
		{SmallMessages: 10, LargeMessages: 10, SmallBytes: 5, LargeBytes: 5, Repeats: 1},
		{SmallMessages: 10, LargeMessages: 10, SmallBytes: 1, LargeBytes: 2, Repeats: 0},
	}
	for _, r := range bad {
		if _, err := r.Calibrate(link); err == nil {
			t.Errorf("bad config accepted: %+v", r)
		}
	}
}

func TestLinkTransferErrors(t *testing.T) {
	link := simhw.NewPCIe3UpLink(1)
	if err := link.Transfer(-1, 1); err == nil {
		t.Fatal("negative transfer accepted")
	}
	link.Reset()
	link.Idle(-1)
	if link.Clock() != 0 {
		t.Fatal("negative idle advanced clock")
	}
	if err := link.Transfer(1024, 1); err != nil {
		t.Fatal(err)
	}
	if link.TrueEnergy() <= 0 || link.Clock() <= 0 {
		t.Fatal("transfer accounting missing")
	}
}

const pcieChannelSrc = `
<interconnect name="pcie3_test">
  <channel name="up_link"
           max_bandwidth="6" max_bandwidth_unit="GiB/s"
           time_offset_per_message="?" time_offset_per_message_unit="ns"
           energy_per_byte="8" energy_per_byte_unit="pJ"
           energy_offset_per_message="?" energy_offset_per_message_unit="pJ" />
</interconnect>`

func TestFillChannelFromCalibration(t *testing.T) {
	p := parser.New()
	ic, _, err := p.ParseFile("pcie.xpdl", []byte(pcieChannelSrc))
	if err != nil {
		t.Fatal(err)
	}
	ch := ic.FirstChildKind("channel")
	if !UnknownChannelAttrs(ch) {
		t.Fatal("expected unknown attrs before calibration")
	}
	link := LinkFromChannel(ch, 3)
	// Known attributes seeded the link truth.
	if link.BandwidthBps != 6*(1<<30) || link.EnergyPerB != 8e-12 {
		t.Fatalf("link seeding wrong: %+v", link)
	}
	res, err := NewChannelRunner().Calibrate(link)
	if err != nil {
		t.Fatal(err)
	}
	FillChannel(ch, res, false)
	if UnknownChannelAttrs(ch) {
		t.Fatal("unknown attrs remain after fill")
	}
	toff, ok := ch.QuantityAttr("time_offset_per_message")
	if !ok || math.Abs(toff.Value-link.TimeOffsetS)/link.TimeOffsetS > 0.05 {
		t.Fatalf("toff = %+v (truth %g)", toff, link.TimeOffsetS)
	}
	// The given energy_per_byte stays untouched without force.
	epb, _ := ch.QuantityAttr("energy_per_byte")
	if epb.Value != 8e-12 {
		t.Fatalf("given epb overridden: %g", epb.Value)
	}
	// With force, measured values override the given ones.
	FillChannel(ch, ChannelResult{EnergyPerB: 9e-12, BandwidthBps: 1, TimeOffsetS: 1, EnergyOffJ: 1}, true)
	epb, _ = ch.QuantityAttr("energy_per_byte")
	if epb.Value != 9e-12 {
		t.Fatalf("force did not override: %g", epb.Value)
	}
}
