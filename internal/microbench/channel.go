package microbench

import (
	"fmt"

	"xpdl/internal/model"
	"xpdl/internal/simhw"
	"xpdl/internal/units"
)

// ChannelResult is the outcome of calibrating one interconnect channel:
// the affine cost parameters of Listing 3 derived from measured
// transfers.
type ChannelResult struct {
	BandwidthBps float64
	TimeOffsetS  float64
	EnergyPerB   float64
	EnergyOffJ   float64
}

// ChannelRunner calibrates simulated links.
type ChannelRunner struct {
	// SmallBytes/LargeBytes are the two payload sizes whose difference
	// isolates the per-byte from the per-message components.
	SmallBytes int64
	LargeBytes int64
	// SmallMessages/LargeMessages are the batch sizes per payload. The
	// per-message offsets are tiny, so the small-payload batch needs
	// many messages for the offsets to rise above the meter noise; the
	// per-byte slope is strong, so the large-payload batch can be short.
	SmallMessages int64
	LargeMessages int64
	// Repeats averages repeated measurement batches.
	Repeats int
}

// NewChannelRunner returns a runner with defaults sized so the offsets
// integrate well above the meter noise floor.
func NewChannelRunner() *ChannelRunner {
	return &ChannelRunner{
		SmallBytes:    256,
		LargeBytes:    64 << 10,
		SmallMessages: 20_000_000,
		LargeMessages: 100_000,
		Repeats:       5,
	}
}

// Calibrate derives the link's affine cost model by running message
// batches at two payload sizes: with per-message energy
// e(b) = eoff + b*epb and time t(b) = toff + b/bw, two payload sizes
// determine all four parameters. This is the deployment-time path that
// fills the "?" offsets of the pcie3 descriptor.
func (r *ChannelRunner) Calibrate(link *simhw.Link) (ChannelResult, error) {
	if r.SmallMessages <= 0 || r.LargeMessages <= 0 || r.Repeats <= 0 ||
		r.SmallBytes == r.LargeBytes {
		return ChannelResult{}, fmt.Errorf("microbench: invalid channel runner configuration")
	}
	// measure returns per-message (energy, time) for one payload size.
	measure := func(perMsgBytes, messages int64) (energyJ, timeS float64, err error) {
		var eSum, tSum float64
		for rep := 0; rep < r.Repeats; rep++ {
			link.Reset()
			if err := link.Transfer(perMsgBytes*messages, messages); err != nil {
				return 0, 0, err
			}
			eRun, tRun := link.ReadMeter()
			// Idle baseline over the same duration isolates the
			// transfer energy from the link's idle power.
			link.Reset()
			link.Idle(tRun)
			eIdle, _ := link.ReadMeter()
			eSum += (eRun - eIdle) / float64(messages)
			tSum += tRun / float64(messages)
		}
		n := float64(r.Repeats)
		return eSum / n, tSum / n, nil
	}

	e1, t1, err := measure(r.SmallBytes, r.SmallMessages)
	if err != nil {
		return ChannelResult{}, err
	}
	e2, t2, err := measure(r.LargeBytes, r.LargeMessages)
	if err != nil {
		return ChannelResult{}, err
	}
	db := float64(r.LargeBytes - r.SmallBytes)

	// Per-byte slopes from the two points.
	epb := (e2 - e1) / db
	invBW := (t2 - t1) / db
	res := ChannelResult{EnergyPerB: epb}
	if invBW > 0 {
		res.BandwidthBps = 1 / invBW
	}
	// Offsets from the small-payload intercept.
	res.EnergyOffJ = e1 - epb*float64(r.SmallBytes)
	res.TimeOffsetS = t1 - invBW*float64(r.SmallBytes)
	if res.EnergyOffJ < 0 {
		res.EnergyOffJ = 0
	}
	if res.TimeOffsetS < 0 {
		res.TimeOffsetS = 0
	}
	return res, nil
}

// FillChannel writes calibrated parameters into a <channel> component,
// replacing "?" placeholders. Attributes with given (non-placeholder)
// values are kept unless force is set.
func FillChannel(ch *model.Component, res ChannelResult, force bool) {
	set := func(attr string, q units.Quantity) {
		a, ok := ch.Attr(attr)
		if ok && !a.Unknown && !force {
			return
		}
		unit := a.Unit
		ch.SetAttr(attr, model.Attr{
			Raw: fmt.Sprintf("%g", q.Value), Unit: unit,
			Quantity: q, HasQuantity: true,
		})
	}
	set("time_offset_per_message", units.Quantity{Value: res.TimeOffsetS, Dim: units.Time})
	set("energy_offset_per_message", units.Quantity{Value: res.EnergyOffJ, Dim: units.Energy})
	set("energy_per_byte", units.Quantity{Value: res.EnergyPerB, Dim: units.Energy})
	set("max_bandwidth", units.Quantity{Value: res.BandwidthBps, Dim: units.Bandwidth})
}

// UnknownChannelAttrs reports whether the channel still carries "?"
// placeholders in its cost attributes.
func UnknownChannelAttrs(ch *model.Component) bool {
	for _, attr := range []string{
		"time_offset_per_message", "energy_offset_per_message",
		"energy_per_byte", "max_bandwidth",
	} {
		if a, ok := ch.Attr(attr); ok && a.Unknown {
			return true
		}
	}
	return false
}

// LinkFromChannel builds the simulated ground-truth link for a channel
// component: known attributes seed the truth; unknown offsets take the
// simulated hardware's intrinsic values (the properties a real PCIe
// link would have, which the descriptor left as "?").
func LinkFromChannel(ch *model.Component, seed int64) *simhw.Link {
	link := simhw.NewPCIe3UpLink(seed)
	if q, ok := ch.QuantityAttr("max_bandwidth"); ok && q.Value > 0 {
		link.BandwidthBps = q.Value
	}
	if q, ok := ch.QuantityAttr("energy_per_byte"); ok && q.Value > 0 {
		link.EnergyPerB = q.Value
	}
	if q, ok := ch.QuantityAttr("time_offset_per_message"); ok && q.Value > 0 {
		link.TimeOffsetS = q.Value
	}
	if q, ok := ch.QuantityAttr("energy_offset_per_message"); ok && q.Value > 0 {
		link.EnergyOffJ = q.Value
	}
	return link
}
