package query

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"xpdl/internal/obs"
)

// Query-planning counters in the process-wide registry: how often the
// hot select path reuses a compiled plan and answers from the
// per-snapshot indexes instead of re-parsing and walking the tree.
var (
	mPlanCacheHits = obs.Default().Counter("xpdl_query_plan_cache_hits_total",
		"Selector evaluations answered by a cached compiled plan.")
	mPlanCacheMisses = obs.Default().Counter("xpdl_query_plan_cache_misses_total",
		"Selector evaluations that compiled a fresh plan.")
	mIndexBuilds = obs.Default().Counter("xpdl_query_index_builds_total",
		"Per-snapshot selector index constructions (once per session).")
	mIndexedSegments = obs.Default().Counter("xpdl_query_indexed_segments_total",
		"Selector segments resolved by index lookup instead of a tree walk.")
	mWalkedSegments = obs.Default().Counter("xpdl_query_walked_segments_total",
		"Selector segments resolved by the general tree walker.")
	mIndexAdoptions = obs.Default().Counter("xpdl_query_index_adoptions_total",
		"Selector indexes shared from a structurally identical predecessor snapshot.")
)

// Plan is a compiled selector: the parse and predicate analysis happen
// once at Compile time, so evaluating the same selector against many
// snapshots (the xpdld hot path) costs no per-request front-end work.
// A Plan is immutable and safe for concurrent use; it carries no model
// state, so one Plan may run against any number of Sessions, including
// across hot swaps.
type Plan struct {
	selector  string
	segs      []segment
	shape     string
	shapeHash uint64
}

// Compile parses a selector into a reusable plan. The grammar and
// semantics are exactly those of Session.Select.
func Compile(selector string) (*Plan, error) {
	segs, err := parseSelector(selector)
	if err != nil {
		return nil, err
	}
	p := &Plan{selector: selector, segs: segs}
	p.shape = p.buildShape()
	p.shapeHash = fnv64a(p.shape)
	return p, nil
}

// Selector returns the source text the plan was compiled from.
func (p *Plan) Selector() string { return p.selector }

// Run evaluates the plan from the session root — the fast equivalent
// of Session.Select with this plan's selector.
func (p *Plan) Run(s *Session) ([]Elem, error) {
	root := s.Root()
	if !root.Valid() {
		return nil, nil
	}
	return p.run(root, true), nil
}

// RunFrom evaluates the plan relative to an element, like Elem.Select.
func (p *Plan) RunFrom(e Elem) ([]Elem, error) {
	if !e.Valid() {
		return nil, nil
	}
	return p.run(e, true), nil
}

// runWalker evaluates the plan using only the general tree walker,
// never the indexes — the reference implementation the differential
// tests and benchmarks compare the indexed path against.
func (p *Plan) runWalker(e Elem) []Elem {
	if !e.Valid() {
		return nil
	}
	return p.run(e, false)
}

// run executes the compiled segments. useIndex gates the per-snapshot
// index fast paths; both modes must produce identical results.
func (p *Plan) run(from Elem, useIndex bool) []Elem {
	current := []Elem{from}
	for si := range p.segs {
		sg := &p.segs[si]
		var next []Elem
		unique := false
		if useIndex && si == 0 && sg.deep && from.idx == 0 && sg.kind != "*" {
			next = sg.indexed(from.s)
			unique = true
			mIndexedSegments.Inc()
		} else {
			mWalkedSegments.Inc()
			for _, cur := range current {
				next = append(next, sg.apply(cur)...)
			}
		}
		// Dedupe BEFORE applying a positional predicate: on "//" axes an
		// element reachable through two ancestors must occupy one
		// position, not shift the [N] numbering of everything after it
		// (see TestSelectIndexAfterDedupe). Index results are unique and
		// preorder-sorted by construction.
		if !unique {
			next = dedupe(next)
		}
		if sg.index >= 0 {
			if sg.index < len(next) {
				next = next[sg.index : sg.index+1]
			} else {
				next = nil
			}
		}
		current = next
	}
	return current
}

// Describe renders the compiled plan one line per segment, naming the
// strategy the executor uses when the plan runs from the model root —
// the output of `xpdlquery explain`.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s\n", p.selector)
	for i := range p.segs {
		sg := &p.segs[i]
		axis := "/"
		if sg.deep {
			axis = "//"
		}
		fmt.Fprintf(&b, "  seg %d: %s%s  strategy=%s\n", i, axis, sg.text(), sg.strategy(i == 0))
	}
	return b.String()
}

// Shape returns the plan's normalized form with literals stripped:
// predicate comparison values become `?` and positional indexes become
// `#`, while the structural parts — axes, kinds, predicate attributes
// and operators — are kept verbatim. Two selectors that differ only in
// literals share a shape, so per-query statistics aggregate by query
// *class* with bounded cardinality (qstats digests key on this). The
// shape is computed once at Compile and is stable across processes.
func (p *Plan) Shape() string { return p.shape }

// ShapeHash returns the FNV-64a hash of Shape() — the cheap stable
// integer form used as an aggregation key.
func (p *Plan) ShapeHash() uint64 { return p.shapeHash }

func (p *Plan) buildShape() string {
	var b strings.Builder
	for i := range p.segs {
		sg := &p.segs[i]
		if sg.deep {
			b.WriteString("//")
		} else {
			b.WriteString("/")
		}
		b.WriteString(sg.kind)
		switch {
		case sg.index >= 0:
			b.WriteString("[#]")
		case sg.hasPred:
			b.WriteString("[")
			b.WriteString(sg.attr)
			b.WriteString(sg.op)
			b.WriteString("?]")
		}
	}
	return b.String()
}

// ShapeOf compiles (or fetches from the default plan cache) a selector
// and returns its shape and shape hash — the one-call form used by the
// serving layer to digest selectors it did not compile itself.
func ShapeOf(selector string) (string, uint64, error) {
	p, err := defaultPlans.Get(selector)
	if err != nil {
		return "", 0, err
	}
	return p.shape, p.shapeHash, nil
}

// fnv64a is the FNV-1a 64-bit hash — inlined rather than importing
// hash/fnv so shape hashing allocates nothing.
func fnv64a(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// text reconstructs the segment's source form.
func (sg *segment) text() string {
	out := sg.kind
	switch {
	case sg.index >= 0:
		out += "[" + strconv.Itoa(sg.index) + "]"
	case sg.hasPred:
		out += "[" + sg.attr + sg.op + sg.value + "]"
	}
	return out
}

// strategy names how the executor resolves this segment when the plan
// runs from the root element.
func (sg *segment) strategy(first bool) string {
	if !first || !sg.deep || sg.kind == "*" {
		return "walk"
	}
	if !sg.hasPred {
		return "index:kind"
	}
	if sg.op == "=" && !numericLiteral(sg.value) {
		switch sg.attr {
		case "name":
			return "index:kind+name"
		case "id":
			return "index:id"
		}
	}
	return "index:kind-scan"
}

// numericLiteral reports whether matchPred would treat the predicate
// value as a number (and thus compare against attribute values rather
// than the identity strings the maps are keyed by).
func numericLiteral(v string) bool {
	_, err := strconv.ParseFloat(v, 64)
	return err == nil
}

// indexed resolves a deep first segment from the root via the
// per-snapshot indexes. The returned elements are unique and in
// preorder — exactly the walker's output for the same segment.
func (sg *segment) indexed(s *Session) []Elem {
	idx := s.indexes()
	if sg.hasPred && sg.op == "=" && !numericLiteral(sg.value) {
		switch sg.attr {
		case "name":
			return s.elemsOf(idx.byKindName[kindName{sg.kind, sg.value}])
		case "id":
			var out []Elem
			for _, i := range idx.byID[sg.value] {
				if i != 0 && s.m.Nodes[i].Kind == sg.kind {
					out = append(out, Elem{s: s, idx: i, ok: true})
				}
			}
			return out
		}
	}
	candidates := idx.byKind[sg.kind]
	if !sg.hasPred {
		return s.elemsOf(candidates)
	}
	// General predicate: scan only this kind's elements, reusing the
	// walker's matcher so the semantics cannot drift.
	var out []Elem
	for _, i := range candidates {
		if i == 0 {
			continue
		}
		e := Elem{s: s, idx: i, ok: true}
		if sg.matchPred(e) {
			out = append(out, e)
		}
	}
	return out
}

// elemsOf materializes cursors for preorder node indices, skipping the
// root: the walker never considers the element a selector starts from.
func (s *Session) elemsOf(idxs []int32) []Elem {
	var out []Elem
	for _, i := range idxs {
		if i == 0 {
			continue
		}
		out = append(out, Elem{s: s, idx: i, ok: true})
	}
	return out
}

// ---- per-snapshot selector indexes ----

type kindName struct{ kind, name string }

// selIndex accelerates the common selector shapes over one immutable
// model: kind → elements, (kind, name) → elements, id → elements. All
// slices are in preorder, so indexed answers reproduce walker order.
type selIndex struct {
	byKind     map[string][]int32
	byKindName map[kindName][]int32
	byID       map[string][]int32
	// paths holds every node's slash-separated identifier path, built
	// once per immutable model so Elem.Path on the serving hot path is
	// a slice load instead of an ancestor walk with string joins.
	paths []string
}

func buildSelIndex(s *Session) *selIndex {
	idx := &selIndex{
		byKind:     map[string][]int32{},
		byKindName: map[kindName][]int32{},
		byID:       map[string][]int32{},
		paths:      make([]string, len(s.m.Nodes)),
	}
	for i := range s.m.Nodes {
		n := &s.m.Nodes[i]
		pi := int32(i)
		idx.byKind[n.Kind] = append(idx.byKind[n.Kind], pi)
		if n.Name != "" {
			k := kindName{n.Kind, n.Name}
			idx.byKindName[k] = append(idx.byKindName[k], pi)
		}
		if n.ID != "" {
			idx.byID[n.ID] = append(idx.byID[n.ID], pi)
		}
		// Nodes are stored in preorder (parents precede children, which
		// the loader enforces), so the parent path is always computed.
		ident := n.Ident()
		switch {
		case n.Parent < 0 || n.Parent >= pi:
			idx.paths[i] = ident
		case ident == "":
			idx.paths[i] = idx.paths[n.Parent]
		case idx.paths[n.Parent] == "":
			idx.paths[i] = ident
		default:
			idx.paths[i] = idx.paths[n.Parent] + "/" + ident
		}
	}
	return idx
}

// indexes returns the session's selector indexes, building them on
// first use. The build runs exactly once per session; the model is
// immutable, so the result never changes.
func (s *Session) indexes() *selIndex {
	s.idxOnce.Do(func() {
		s.idx = buildSelIndex(s)
		mIndexBuilds.Inc()
	})
	return s.idx
}

// BuildIndexes eagerly constructs the per-snapshot selector indexes.
// Serving layers call it at snapshot-load time so the first request
// after a hot swap never pays the build; calling it again is free.
func (s *Session) BuildIndexes() { s.indexes() }

// AdoptIndexes installs from's selector indexes into s instead of
// building fresh ones — the incremental hot-swap path, where a patched
// snapshot differs from its predecessor only in attribute values and
// the kind/kind+name/id maps and precomputed paths are therefore
// identical. Adoption is refused (returning false, with s untouched
// and still able to build its own indexes) unless every node of the
// two models agrees on kind, name, id and parent — the exact inputs of
// buildSelIndex — so a misuse can never serve wrong selector answers.
// It also returns false when s already has indexes.
func (s *Session) AdoptIndexes(from *Session) bool {
	if from == nil || from.m == nil || s.m == nil {
		return false
	}
	if len(s.m.Nodes) != len(from.m.Nodes) {
		return false
	}
	for i := range s.m.Nodes {
		a, b := &s.m.Nodes[i], &from.m.Nodes[i]
		if a.Kind != b.Kind || a.Name != b.Name || a.ID != b.ID || a.Parent != b.Parent {
			return false
		}
	}
	src := from.indexes()
	adopted := false
	s.idxOnce.Do(func() {
		s.idx = src
		adopted = true
		mIndexAdoptions.Inc()
	})
	return adopted
}

// ---- plan cache ----

// PlanCache is a concurrency-safe bounded LRU of compiled plans keyed
// by selector text. Plans carry no model state, so one cache serves
// every snapshot — hot swaps never invalidate it.
type PlanCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used; values are *Plan
}

// NewPlanCache builds a cache bounded to max compiled plans (<= 0
// disables caching: every Get compiles).
func NewPlanCache(max int) *PlanCache {
	return &PlanCache{max: max, entries: map[string]*list.Element{}, lru: list.New()}
}

// Get returns the compiled plan for a selector, compiling and caching
// it on first use. Parse errors are returned without being cached.
func (c *PlanCache) Get(selector string) (*Plan, error) {
	c.mu.Lock()
	if el, ok := c.entries[selector]; ok {
		c.lru.MoveToFront(el)
		p := el.Value.(*Plan)
		c.mu.Unlock()
		mPlanCacheHits.Inc()
		return p, nil
	}
	c.mu.Unlock()
	mPlanCacheMisses.Inc()
	p, err := Compile(selector)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	// A concurrent Get may have compiled the same selector; keep the
	// resident one so repeated callers share a single Plan value.
	if el, ok := c.entries[selector]; ok {
		c.lru.MoveToFront(el)
		p = el.Value.(*Plan)
	} else if c.max > 0 {
		c.entries[selector] = c.lru.PushFront(p)
		c.evictLocked()
	}
	c.mu.Unlock()
	return p, nil
}

// evictLocked trims the LRU down to the capacity. Caller holds mu.
func (c *PlanCache) evictLocked() {
	for c.max > 0 && len(c.entries) > c.max {
		back := c.lru.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*Plan)
		c.lru.Remove(back)
		delete(c.entries, victim.selector)
	}
}

// SetCapacity rebounds the cache, evicting least-recently-used plans
// when shrinking. A capacity <= 0 disables caching and drops every
// resident plan.
func (c *PlanCache) SetCapacity(max int) {
	c.mu.Lock()
	c.max = max
	if max <= 0 {
		c.entries = map[string]*list.Element{}
		c.lru.Init()
	} else {
		c.evictLocked()
	}
	c.mu.Unlock()
}

// Len returns the number of resident compiled plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// defaultPlans backs Session.Select / Elem.Select; 1024 selectors is
// far beyond any real client mix, and the LRU bound keeps adversarial
// selector streams (fuzzers, scrapers) from growing it without limit.
var defaultPlans = NewPlanCache(1024)

// DefaultPlanCache returns the process-wide plan cache used by
// Session.Select; daemons resize it via SetCapacity.
func DefaultPlanCache() *PlanCache { return defaultPlans }
