package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Select evaluates a path selector over the model tree — a compact way
// for tools and composition code to address sets of model elements
// without writing traversal loops. The grammar:
//
//	segment       = kind | "*"            element kind, or any
//	segment[pred] = filtered segment
//	pred          = attr op value | index
//	op            = "=" | "!=" | "<" | ">" | "<=" | ">="
//	index         = decimal (position among the segment's matches)
//
// Segments are joined with "/" (children) or "//" (descendants at any
// depth). A leading "/" anchors at the session root; a leading "//"
// searches the whole tree. The pseudo-attributes id, name and type
// match the element identity fields. Examples:
//
//	//cache[name=L3]
//	/system/node[0]/device
//	//device[type=Nvidia_K20c]
//	//core[frequency>=2e9]
//	//power_domain[enableSwitchOff=false]
//
// Positional predicates apply across the combined, deduplicated match
// list of their segment, matching how users count results.
//
// Comparison semantics: when the predicate value parses as a number,
// the attribute's normalized numeric value (or its raw string, if that
// parses) is compared numerically. Otherwise "=" and "!=" compare the
// raw strings exactly. The ordered operators (<, <=, >, >=) are
// defined only over numbers: when either side is non-numeric the
// predicate is false — never an error. A missing attribute matches
// "!=" against any value and fails every other operator.
//
// Selectors are compiled once into a Plan and cached in the bounded
// process-wide DefaultPlanCache, and sessions answer the common deep
// shapes (//kind, //kind[name=…], //kind[id=…], //kind[attr op v])
// from per-snapshot hash indexes instead of tree walks; results are
// identical to the walker's in content and order.
func (s *Session) Select(selector string) ([]Elem, error) {
	root := s.Root()
	if !root.Valid() {
		return nil, nil
	}
	return root.Select(selector)
}

// Select evaluates the selector relative to this element; see
// Session.Select for the grammar.
func (e Elem) Select(selector string) ([]Elem, error) {
	mSelectorEvals.Inc()
	p, err := defaultPlans.Get(selector)
	if err != nil {
		return nil, err
	}
	return p.RunFrom(e)
}

// SelectOne returns the single element matched by the selector; it
// fails when the match count is not exactly one.
func (s *Session) SelectOne(selector string) (Elem, error) {
	got, err := s.Select(selector)
	if err != nil {
		return Elem{}, err
	}
	if len(got) != 1 {
		return Elem{}, fmt.Errorf("query: selector %q matched %d elements, want 1", selector, len(got))
	}
	return got[0], nil
}

type segment struct {
	kind    string // "" or "*" matches any
	deep    bool   // descendant axis ("//")
	index   int    // positional predicate; -1 = none
	attr    string
	op      string
	value   string
	hasPred bool
}

func parseSelector(sel string) ([]segment, error) {
	sel = strings.TrimSpace(sel)
	if sel == "" {
		return nil, fmt.Errorf("query: empty selector")
	}
	var segs []segment
	deep := false
	i := 0
	// Leading axis.
	switch {
	case strings.HasPrefix(sel, "//"):
		deep = true
		i = 2
	case strings.HasPrefix(sel, "/"):
		i = 1
	}
	rest := sel[i:]
	for rest != "" {
		// Next segment text up to the following axis separator.
		var segText string
		if idx := strings.Index(rest, "/"); idx >= 0 {
			segText = rest[:idx]
			rest = rest[idx:]
		} else {
			segText = rest
			rest = ""
		}
		if segText == "" {
			return nil, fmt.Errorf("query: empty segment in selector %q", sel)
		}
		sg, err := parseSegment(segText)
		if err != nil {
			return nil, err
		}
		sg.deep = deep
		segs = append(segs, sg)
		// Determine the axis to the next segment.
		deep = false
		stripped := false
		if strings.HasPrefix(rest, "//") {
			deep = true
			rest = rest[2:]
			stripped = true
		} else if strings.HasPrefix(rest, "/") {
			rest = rest[1:]
			stripped = true
		}
		if stripped && rest == "" {
			return nil, fmt.Errorf("query: selector %q ends with a path separator", sel)
		}
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("query: selector %q has no segments", sel)
	}
	return segs, nil
}

func parseSegment(text string) (segment, error) {
	sg := segment{index: -1}
	name := text
	if open := strings.Index(text, "["); open >= 0 {
		if !strings.HasSuffix(text, "]") {
			return segment{}, fmt.Errorf("query: unterminated predicate in %q", text)
		}
		name = text[:open]
		pred := text[open+1 : len(text)-1]
		if pred == "" {
			return segment{}, fmt.Errorf("query: empty predicate in %q", text)
		}
		if n, err := strconv.Atoi(pred); err == nil {
			if n < 0 {
				return segment{}, fmt.Errorf("query: negative index in %q", text)
			}
			sg.index = n
		} else {
			op := ""
			for _, cand := range []string{"!=", "<=", ">=", "=", "<", ">"} {
				if idx := strings.Index(pred, cand); idx > 0 {
					sg.attr = strings.TrimSpace(pred[:idx])
					sg.value = strings.TrimSpace(pred[idx+len(cand):])
					op = cand
					break
				}
			}
			if op == "" {
				return segment{}, fmt.Errorf("query: cannot parse predicate %q", pred)
			}
			sg.op = op
			sg.hasPred = true
			if sg.attr == "" || sg.value == "" {
				return segment{}, fmt.Errorf("query: incomplete predicate %q", pred)
			}
		}
	}
	if name == "" {
		return segment{}, fmt.Errorf("query: segment %q has no kind", text)
	}
	sg.kind = name
	return sg, nil
}

func (sg segment) apply(from Elem) []Elem {
	var out []Elem
	consider := func(x Elem) {
		if sg.kind != "*" && x.Kind() != sg.kind {
			return
		}
		if sg.hasPred && !sg.matchPred(x) {
			return
		}
		out = append(out, x)
	}
	if sg.deep {
		for _, c := range from.Children() {
			c.walk(func(x Elem) bool {
				consider(x)
				return true
			})
		}
	} else {
		for _, c := range from.Children() {
			consider(c)
		}
	}
	return out
}

// matchPred evaluates the segment's attribute predicate against one
// element. The semantics are total — no input combination errors:
//
//   - numeric value, numeric attribute  → numeric comparison
//   - otherwise, "="/"!="               → exact raw-string comparison
//   - otherwise, ordered op (<, >=, …)  → false (non-numeric side)
//   - missing attribute                 → true only for "!="
func (sg segment) matchPred(x Elem) bool {
	// Identity pseudo-attributes first.
	var str string
	var strOK bool
	switch sg.attr {
	case "id":
		str, strOK = x.ID(), true
	case "name":
		str, strOK = x.Name(), true
	case "type":
		str, strOK = x.TypeName(), true
	default:
		str, strOK = x.GetString(sg.attr)
	}
	// Numeric comparison when both sides parse as numbers.
	want, errW := strconv.ParseFloat(sg.value, 64)
	if errW == nil {
		if have, ok := x.GetFloat(sg.attr); ok {
			return compare(have, want, sg.op)
		}
		if strOK {
			if have, err := strconv.ParseFloat(strings.TrimSpace(str), 64); err == nil {
				return compare(have, want, sg.op)
			}
		}
	}
	if !strOK {
		return sg.op == "!=" // absent attribute differs from any value
	}
	switch sg.op {
	case "=":
		return str == sg.value
	case "!=":
		return str != sg.value
	default:
		// Ordered comparison where either side is non-numeric: the
		// predicate is simply false, never an error — selectors must
		// stay total over arbitrary models.
		return false
	}
}

func compare(a, b float64, op string) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func dedupe(elems []Elem) []Elem {
	seen := map[int32]bool{}
	out := elems[:0]
	for _, e := range elems {
		if !seen[e.idx] {
			seen[e.idx] = true
			out = append(out, e)
		}
	}
	return out
}
