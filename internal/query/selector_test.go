package query

import (
	"testing"

	"xpdl/internal/model"
	"xpdl/internal/rtmodel"
	"xpdl/internal/units"
)

// selectorModel builds a two-node mini cluster for selector tests.
func selectorSession() *Session {
	sys := model.New("system")
	sys.ID = "cl"
	for i, freq := range []string{"2", "3"} {
		node := model.New("node")
		node.ID = "n" + string(rune('0'+i))
		cpu := model.New("cpu")
		cpu.ID = "cpu" + string(rune('0'+i))
		cpu.Type = "Xeon"
		cpu.SetQuantity("frequency", units.MustParse(freq, "GHz"))
		l3 := model.New("cache")
		l3.Name = "L3"
		l3.SetQuantity("size", units.MustParse("15", "MiB"))
		cpu.Children = append(cpu.Children, l3)
		for j := 0; j < 2; j++ {
			cpu.Children = append(cpu.Children, model.New("core"))
		}
		node.Children = append(node.Children, cpu)
		gpu := model.New("device")
		gpu.ID = "gpu" + string(rune('0'+i))
		gpu.Type = "Nvidia_K20c"
		gpu.SetAttr("role", model.Attr{Raw: "worker"})
		node.Children = append(node.Children, gpu)
		sys.Children = append(sys.Children, node)
	}
	pd := model.New("power_domain")
	pd.Name = "main_pd"
	pd.SetAttr("enableSwitchOff", model.Attr{Raw: "false"})
	sys.Children = append(sys.Children, pd)
	return NewSession(rtmodel.Build(sys))
}

func sel(t *testing.T, s *Session, selector string) []Elem {
	t.Helper()
	got, err := s.Select(selector)
	if err != nil {
		t.Fatalf("Select(%q): %v", selector, err)
	}
	return got
}

func TestSelectChildrenAxis(t *testing.T) {
	s := selectorSession()
	if got := sel(t, s, "node"); len(got) != 2 {
		t.Fatalf("node matches = %d", len(got))
	}
	if got := sel(t, s, "node/cpu"); len(got) != 2 {
		t.Fatalf("node/cpu matches = %d", len(got))
	}
	// cache is not a direct child of node.
	if got := sel(t, s, "node/cache"); len(got) != 0 {
		t.Fatalf("node/cache matches = %d", len(got))
	}
}

func TestSelectDescendantAxis(t *testing.T) {
	s := selectorSession()
	if got := sel(t, s, "//cache"); len(got) != 2 {
		t.Fatalf("//cache = %d", len(got))
	}
	if got := sel(t, s, "//core"); len(got) != 4 {
		t.Fatalf("//core = %d", len(got))
	}
	if got := sel(t, s, "node//core"); len(got) != 4 {
		t.Fatalf("node//core = %d", len(got))
	}
	if got := sel(t, s, "//*"); len(got) < 10 {
		t.Fatalf("//* = %d", len(got))
	}
}

func TestSelectPredicates(t *testing.T) {
	s := selectorSession()
	cases := map[string]int{
		"//cache[name=L3]":                      2,
		"//device[type=Nvidia_K20c]":            2,
		"//device[type=Other]":                  0,
		"//cpu[frequency>=3e9]":                 1,
		"//cpu[frequency<3e9]":                  1,
		"//cpu[frequency!=2e9]":                 1,
		"//device[role=worker]":                 2,
		"//device[role!=worker]":                0,
		"//power_domain[enableSwitchOff=false]": 1,
		"//node[id=n1]":                         1,
		"//core[zzz!=foo]":                      4, // absent attr differs from any value
		"//core[zzz=foo]":                       0,
		"//cache[size=15728640]":                2, // normalized bytes
	}
	for selector, want := range cases {
		if got := sel(t, s, selector); len(got) != want {
			t.Errorf("%q matched %d, want %d", selector, len(got), want)
		}
	}
}

func TestSelectIndex(t *testing.T) {
	s := selectorSession()
	got := sel(t, s, "node[1]/device")
	if len(got) != 1 || got[0].ID() != "gpu1" {
		t.Fatalf("node[1]/device = %v", ids(got))
	}
	if got := sel(t, s, "node[5]"); len(got) != 0 {
		t.Fatal("out-of-range index matched")
	}
	got = sel(t, s, "//cpu[0]")
	if len(got) != 1 || got[0].ID() != "cpu0" {
		t.Fatalf("//cpu[0] = %v", ids(got))
	}
}

func ids(es []Elem) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Ident()
	}
	return out
}

func TestSelectOne(t *testing.T) {
	s := selectorSession()
	e, err := s.SelectOne("//node[id=n0]/cpu")
	if err != nil || e.ID() != "cpu0" {
		t.Fatalf("SelectOne: %v %v", e.Ident(), err)
	}
	if _, err := s.SelectOne("//core"); err == nil {
		t.Fatal("ambiguous SelectOne accepted")
	}
	if _, err := s.SelectOne("//ghost"); err == nil {
		t.Fatal("empty SelectOne accepted")
	}
}

func TestSelectRelative(t *testing.T) {
	s := selectorSession()
	n0, _ := s.Find("n0")
	got, err := n0.Select("cpu/cache")
	if err != nil || len(got) != 1 {
		t.Fatalf("relative select = %v, %v", ids(got), err)
	}
}

func TestSelectErrors(t *testing.T) {
	s := selectorSession()
	for _, bad := range []string{
		"", "//", "node[", "node[]", "node[-1]", "node[=x]", "cpu[frequency=]",
		"node//", "a//b//", "[0]",
	} {
		if _, err := s.Select(bad); err == nil {
			t.Errorf("Select(%q) accepted", bad)
		}
	}
}

func TestSelectEmptySession(t *testing.T) {
	s := NewSession(&rtmodel.Model{})
	got, err := s.Select("//cpu")
	if err != nil || got != nil {
		t.Fatalf("empty session select = %v %v", got, err)
	}
}
