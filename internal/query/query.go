// Package query implements the XPDL run-time query API of Section IV.
// It loads the light-weight runtime model emitted by the processing tool
// and offers the paper's four function categories:
//
//  1. Initialization — Init / InitReader correspond to
//     int xpdl_init(char *filename).
//  2. Browsing the model tree — Root, Parent, Children, Descendants.
//  3. Attribute getters — GetString/GetFloat/GetQuantity/GetInt/GetBool,
//     the Go equivalent of the generated m.get_id()-style getters.
//  4. Model analysis functions for derived attributes — NumCores,
//     NumCUDADevices, TotalStaticPower, SumAttr.
//
// In addition, Env exposes the loaded platform model to the constraint
// expression language so that conditional composition (Section II) can
// evaluate selectability predicates such as
// "installed('CUBLAS') && num_cores() >= 4" at run time.
package query

import (
	"io"
	"strconv"
	"strings"
	"sync"

	"xpdl/internal/expr"
	"xpdl/internal/obs"
	"xpdl/internal/rtmodel"
	"xpdl/internal/units"
)

// Runtime-API counters in the process-wide registry: how often
// applications hit the model (see /metrics on any obs-enabled tool).
// Single atomic adds — cheap enough to stay enabled unconditionally.
var (
	mLookups = obs.Default().Counter("xpdl_query_lookups_total",
		"Identifier lookups through Session.Find.")
	mSelectorEvals = obs.Default().Counter("xpdl_query_selector_evals_total",
		"Path-selector evaluations (Select/SelectOne).")
	mEnvCalls = obs.Default().Counter("xpdl_query_env_calls_total",
		"Platform functions invoked from constraint expressions.")
)

// Session is an initialized runtime query environment over one loaded
// platform model. It is immutable after Init and safe for concurrent
// use. Selector indexes (see BuildIndexes) are constructed lazily at
// most once and never change afterwards.
type Session struct {
	m *rtmodel.Model

	idxOnce sync.Once
	idx     *selIndex
}

// Init loads the runtime model file produced by the XPDL processing
// tool — the equivalent of the paper's xpdl_init().
func Init(path string) (*Session, error) {
	m, err := rtmodel.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return NewSession(m), nil
}

// InitReader loads a runtime model from a stream.
func InitReader(r io.Reader) (*Session, error) {
	m, err := rtmodel.Load(r)
	if err != nil {
		return nil, err
	}
	return NewSession(m), nil
}

// NewSession wraps an already loaded model.
func NewSession(m *rtmodel.Model) *Session {
	s := &Session{m: m}
	// Force index construction now so later lookups never mutate state
	// concurrently.
	s.m.Lookup("")
	return s
}

// Model returns the underlying runtime model.
func (s *Session) Model() *rtmodel.Model { return s.m }

// Elem is a cursor over one model element; the zero Elem is invalid.
type Elem struct {
	s   *Session
	idx int32
	ok  bool
}

// Root returns the model root element.
func (s *Session) Root() Elem {
	if s.m.Len() == 0 {
		return Elem{}
	}
	return Elem{s: s, idx: 0, ok: true}
}

// Find locates an element by identifier anywhere in the model.
func (s *Session) Find(ident string) (Elem, bool) {
	mLookups.Inc()
	i, ok := s.m.LookupIndex(ident)
	if !ok {
		return Elem{}, false
	}
	return Elem{s: s, idx: i, ok: true}, true
}

// Valid reports whether the cursor points at an element.
func (e Elem) Valid() bool { return e.ok }

func (e Elem) node() *rtmodel.Node { return e.s.m.Node(e.idx) }

// Kind returns the element kind (cpu, cache, ...).
func (e Elem) Kind() string { return e.node().Kind }

// ID returns the instance identifier.
func (e Elem) ID() string { return e.node().ID }

// Name returns the meta-model name.
func (e Elem) Name() string { return e.node().Name }

// TypeName returns the referenced meta-model type.
func (e Elem) TypeName() string { return e.node().Type }

// Ident returns ID if set, else Name.
func (e Elem) Ident() string { return e.node().Ident() }

// Parent returns the enclosing element.
func (e Elem) Parent() (Elem, bool) {
	p := e.node().Parent
	if p < 0 {
		return Elem{}, false
	}
	return Elem{s: e.s, idx: p, ok: true}, true
}

// Children returns all direct child elements.
func (e Elem) Children() []Elem {
	n := e.node()
	out := make([]Elem, len(n.Children))
	for i, c := range n.Children {
		out[i] = Elem{s: e.s, idx: c, ok: true}
	}
	return out
}

// ChildrenOfKind returns the direct children of the given kind.
func (e Elem) ChildrenOfKind(kind string) []Elem {
	var out []Elem
	for _, c := range e.Children() {
		if c.Kind() == kind {
			out = append(out, c)
		}
	}
	return out
}

// FirstChild returns the first direct child of the given kind.
func (e Elem) FirstChild(kind string) (Elem, bool) {
	for _, c := range e.Children() {
		if c.Kind() == kind {
			return c, true
		}
	}
	return Elem{}, false
}

// Descendants returns every element of the given kind in the subtree
// (excluding e itself), in preorder.
func (e Elem) Descendants(kind string) []Elem {
	var out []Elem
	e.walk(func(x Elem) bool {
		if x.idx != e.idx && x.Kind() == kind {
			out = append(out, x)
		}
		return true
	})
	return out
}

func (e Elem) walk(fn func(Elem) bool) {
	if !fn(e) {
		return
	}
	for _, c := range e.Children() {
		c.walk(fn)
	}
}

// Path returns the slash-separated identifier path from the root. The
// per-model path table is built with the selector indexes on first
// use, so the serving hot path answers from it without allocating.
func (e Elem) Path() string {
	return e.s.indexes().paths[e.idx]
}

// ---- Attribute getters (category 3) ----

// GetString returns the raw string of an attribute.
func (e Elem) GetString(attr string) (string, bool) {
	a, ok := e.node().Attr(attr)
	if !ok {
		return "", false
	}
	return a.Raw, true
}

// GetFloat returns the normalized numeric value of an attribute.
func (e Elem) GetFloat(attr string) (float64, bool) {
	a, ok := e.node().Attr(attr)
	if !ok || !a.HasValue() {
		return 0, false
	}
	return a.Value, true
}

// GetQuantity returns the normalized quantity of an attribute.
func (e Elem) GetQuantity(attr string) (units.Quantity, bool) {
	a, ok := e.node().Attr(attr)
	if !ok || !a.HasValue() {
		return units.Quantity{}, false
	}
	return units.Quantity{Value: a.Value, Dim: a.Dim}, true
}

// GetInt returns an attribute as int.
func (e Elem) GetInt(attr string) (int, bool) {
	if f, ok := e.GetFloat(attr); ok {
		return int(f), true
	}
	if s, ok := e.GetString(attr); ok {
		if v, err := strconv.Atoi(strings.TrimSpace(s)); err == nil {
			return v, true
		}
	}
	return 0, false
}

// GetBool returns an attribute as bool.
func (e Elem) GetBool(attr string) (bool, bool) {
	s, ok := e.GetString(attr)
	if !ok {
		return false, false
	}
	b, err := strconv.ParseBool(strings.ToLower(strings.TrimSpace(s)))
	if err != nil {
		return false, false
	}
	return b, true
}

// Attrs returns the element's attributes in declaration order. The
// slice is shared with the runtime model and must not be mutated —
// used by serving layers that project elements into wire formats.
func (e Elem) Attrs() []rtmodel.Attr { return e.node().Attrs }

// Property returns a free-form property by name.
func (e Elem) Property(name string) (rtmodel.Prop, bool) {
	for _, p := range e.node().Props {
		if p.Name == name {
			return p, true
		}
	}
	return rtmodel.Prop{}, false
}

// ---- Derived model analysis (category 4) ----

// NumCores counts hardware <core> elements in the subtree. Member
// references inside power domains are not hardware and are skipped.
func (e Elem) NumCores() int { return e.countKind("core") }

func (e Elem) countKind(kind string) int {
	n := 0
	e.walk(func(x Elem) bool {
		if x.Kind() == "power_domain" && x.idx != e.idx {
			return false
		}
		if x.Kind() == kind {
			n++
		}
		return true
	})
	return n
}

// NumCUDADevices counts devices advertising a CUDA programming model.
func (e Elem) NumCUDADevices() int {
	n := 0
	e.walk(func(x Elem) bool {
		if x.Kind() != "device" && x.Kind() != "gpu" {
			return true
		}
		if pm, ok := x.FirstChild("programming_model"); ok {
			if typ, ok := pm.GetString("type"); ok && strings.Contains(strings.ToLower(typ), "cuda") {
				n++
				return false
			}
		}
		return true
	})
	return n
}

// TotalStaticPower sums static_power over the subtree (in watts).
func (e Elem) TotalStaticPower() units.Quantity {
	return units.Quantity{Value: e.SumAttr("static_power"), Dim: units.Power}
}

// SumAttr sums the normalized value of an attribute over the subtree.
func (e Elem) SumAttr(attr string) float64 {
	total := 0.0
	e.walk(func(x Elem) bool {
		if v, ok := x.GetFloat(attr); ok {
			total += v
		}
		return true
	})
	return total
}

// MinAttr returns the minimum normalized attribute value in the subtree.
func (e Elem) MinAttr(attr string) (float64, bool) {
	best, have := 0.0, false
	e.walk(func(x Elem) bool {
		if v, ok := x.GetFloat(attr); ok && (!have || v < best) {
			best, have = v, true
		}
		return true
	})
	return best, have
}

// ---- Software introspection ----

// Installed reports whether a software package whose type (or id) starts
// with the given prefix is installed anywhere in the model — the lookup
// behind conditional composition's library-availability constraints
// (e.g. Installed("CUBLAS")).
func (s *Session) Installed(prefix string) bool {
	root := s.Root()
	if !root.Valid() {
		return false
	}
	found := false
	root.walk(func(x Elem) bool {
		if found {
			return false
		}
		if x.Kind() == "installed" || x.Kind() == "hostOS" {
			if strings.HasPrefix(x.TypeName(), prefix) || strings.HasPrefix(x.Ident(), prefix) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// InstalledList returns the type names of all installed software.
func (s *Session) InstalledList() []string {
	var out []string
	root := s.Root()
	if !root.Valid() {
		return nil
	}
	root.walk(func(x Elem) bool {
		if x.Kind() == "installed" || x.Kind() == "hostOS" {
			if t := x.TypeName(); t != "" {
				out = append(out, t)
			} else if id := x.Ident(); id != "" {
				out = append(out, id)
			}
		}
		return true
	})
	return out
}

// HasKind reports whether any element of the given kind exists.
func (s *Session) HasKind(kind string) bool {
	root := s.Root()
	if !root.Valid() {
		return false
	}
	found := false
	root.walk(func(x Elem) bool {
		if x.Kind() == kind {
			found = true
			return false
		}
		return !found
	})
	return found
}

// ---- Expression environment for selectability constraints ----

// Env builds an expression environment over the platform model plus
// call-site variables (e.g. problem size, density). The environment
// provides the platform functions:
//
//	installed('LIB')      — software availability
//	has_kind('gpu')       — element-kind presence
//	num_cores()           — core count under the root
//	num_cuda_devices()    — CUDA device count
//	total_static_power()  — watts, summed over the model
//	attr('ident','name')  — normalized attribute of a named element
func (s *Session) Env(vars map[string]expr.Value) expr.Env {
	return platformEnv{s: s, vars: vars}
}

type platformEnv struct {
	s    *Session
	vars map[string]expr.Value
}

func (p platformEnv) Lookup(name string) (expr.Value, bool) {
	v, ok := p.vars[name]
	return v, ok
}

func (p platformEnv) Call(name string, args []expr.Value) (expr.Value, error) {
	mEnvCalls.Inc()
	switch name {
	case "installed":
		if len(args) == 1 && args[0].Kind == expr.KindString {
			return expr.Bool(p.s.Installed(args[0].Str)), nil
		}
	case "has_kind":
		if len(args) == 1 && args[0].Kind == expr.KindString {
			return expr.Bool(p.s.HasKind(args[0].Str)), nil
		}
	case "num_cores":
		if len(args) == 0 {
			return expr.Number(float64(p.s.Root().NumCores())), nil
		}
	case "num_cuda_devices":
		if len(args) == 0 {
			return expr.Number(float64(p.s.Root().NumCUDADevices())), nil
		}
	case "total_static_power":
		if len(args) == 0 {
			return expr.Number(p.s.Root().TotalStaticPower().Value), nil
		}
	case "attr":
		if len(args) == 2 && args[0].Kind == expr.KindString && args[1].Kind == expr.KindString {
			e, ok := p.s.Find(args[0].Str)
			if !ok {
				return expr.Number(0), nil
			}
			if f, ok := e.GetFloat(args[1].Str); ok {
				return expr.Number(f), nil
			}
			if str, ok := e.GetString(args[1].Str); ok {
				return expr.String(str), nil
			}
			return expr.Number(0), nil
		}
	}
	return expr.CallBuiltin(name, args)
}
