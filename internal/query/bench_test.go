package query

import (
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"xpdl/internal/core"
	"xpdl/internal/model"
	"xpdl/internal/rtmodel"
	"xpdl/internal/units"
)

// benchSession builds a serving-scale synthetic platform: 64 nodes of
// 32 cores plus caches and devices (~4k elements), the size regime
// where the walker-vs-index gap matters for xpdld.
func benchSession() *Session {
	sys := model.New("system")
	sys.ID = "bench"
	for n := 0; n < 64; n++ {
		node := model.New("node")
		node.ID = fmt.Sprintf("node%d", n)
		cpu := model.New("cpu")
		cpu.ID = fmt.Sprintf("cpu%d", n)
		cpu.SetQuantity("frequency", units.Quantity{Value: 2e9 + float64(n)*1e7})
		for c := 0; c < 32; c++ {
			core := model.New("core")
			core.ID = fmt.Sprintf("n%dc%d", n, c)
			core.Name = fmt.Sprintf("core%d", c)
			cpu.Children = append(cpu.Children, core)
		}
		cache := model.New("cache")
		cache.ID = fmt.Sprintf("l3-%d", n)
		cache.Name = "L3"
		dev := model.New("device")
		dev.ID = fmt.Sprintf("dev%d", n)
		node.Children = append(node.Children, cpu, cache, dev)
		sys.Children = append(sys.Children, node)
	}
	return NewSession(rtmodel.Build(sys))
}

// benchSelectors are the E17 comparison points: the shapes the
// per-snapshot indexes accelerate, from full-map-hit to kind-scan.
var benchSelectors = []struct{ name, sel string }{
	{"kind_name", "//core[name=core7]"},
	{"id", "//cache[id=l3-31]"},
	{"kind", "//device"},
	{"kind_scan", "//cpu[frequency>=2.3e9]"},
}

func BenchmarkSelectWalker(b *testing.B) {
	s := benchSession()
	for _, bs := range benchSelectors {
		p, err := Compile(bs.sel)
		if err != nil {
			b.Fatal(err)
		}
		root := s.Root()
		b.Run(bs.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := p.runWalker(root); len(got) == 0 {
					b.Fatalf("%s matched nothing", bs.sel)
				}
			}
		})
	}
}

func BenchmarkSelectIndexed(b *testing.B) {
	s := benchSession()
	s.BuildIndexes()
	for _, bs := range benchSelectors {
		p, err := Compile(bs.sel)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bs.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := p.Run(s)
				if err != nil {
					b.Fatal(err)
				}
				if len(got) == 0 {
					b.Fatalf("%s matched nothing", bs.sel)
				}
			}
		})
	}
}

// bundledSession resolves one of the repository's bundled models
// through the toolchain — the E17 "real model" comparison point.
func bundledSession(b *testing.B, system string) *Session {
	b.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		b.Fatal("caller unknown")
	}
	models := filepath.Join(filepath.Dir(file), "..", "..", "models")
	tc, err := core.New(core.Options{SearchPaths: []string{models}})
	if err != nil {
		b.Fatal(err)
	}
	res, err := tc.Process(system)
	if err != nil {
		b.Fatal(err)
	}
	return NewSession(res.Runtime)
}

// BenchmarkSelectBundled runs the walker-vs-indexed comparison on the
// bundled XScluster model (the paper's 240-node cluster): the
// acceptance shape //kind[name=X] both ways.
func BenchmarkSelectBundled(b *testing.B) {
	s := bundledSession(b, "XScluster")
	s.BuildIndexes()
	const sel = "//cache[name=L3]"
	p, err := Compile(sel)
	if err != nil {
		b.Fatal(err)
	}
	root := s.Root()
	if n := len(p.runWalker(root)); n == 0 {
		b.Fatalf("%s matched nothing", sel)
	}
	b.Run("walker", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.runWalker(root)
		}
	})
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.Run(s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompile measures the per-request front-end work the plan
// cache removes: a fresh parse versus a cache hit.
func BenchmarkCompile(b *testing.B) {
	const sel = "//core[name=core7]"
	b.Run("parse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Compile(sel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		c := NewPlanCache(16)
		if _, err := c.Get(sel); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Get(sel); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSelectEndToEnd is the full hot path as xpdld drives it:
// selector string in, elements out, plan cache and indexes warm.
func BenchmarkSelectEndToEnd(b *testing.B) {
	s := benchSession()
	s.BuildIndexes()
	const sel = "//core[name=core7]"
	if _, err := s.Select(sel); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := s.Select(sel)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != 64 {
			b.Fatalf("matched %d, want 64", len(got))
		}
	}
}

// BenchmarkIndexBuild prices what serve pays once per snapshot load.
func BenchmarkIndexBuild(b *testing.B) {
	s := benchSession()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buildSelIndex(s)
	}
}
