package query

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"xpdl/internal/expr"
	"xpdl/internal/obs"
)

// TestStressConcurrentReaders proves a loaded model serves many
// concurrent readers — browsing, lookups, selectors, derived analysis
// and expression evaluation — while the obs counters record every
// operation and scrapers render the registry (run under -race; the
// Session index is forced at NewSession exactly so this is safe).
func TestStressConcurrentReaders(t *testing.T) {
	const (
		readers = 100
		rounds  = 50
	)
	s := NewSession(buildModel())
	lookupsBefore := obs.Default().Counter("xpdl_query_lookups_total", "").Value()
	selectorsBefore := obs.Default().Counter("xpdl_query_selector_evals_total", "").Value()

	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, ok := s.Find("gpu1"); !ok {
					errs <- fmt.Errorf("gpu1 not found")
					return
				}
				if n := s.Root().NumCores(); n != 12 {
					errs <- fmt.Errorf("NumCores = %d, want 12", n)
					return
				}
				got, err := s.Select("//cache[name=L3]")
				if err != nil || len(got) != 1 {
					errs <- fmt.Errorf("select L3: %v (%d hits)", err, len(got))
					return
				}
				if !s.Installed("CUBLAS") {
					errs <- fmt.Errorf("CUBLAS not installed")
					return
				}
				v, err := expr.Eval("installed('CUBLAS') && num_cores() >= 4", s.Env(nil))
				if err != nil || !v.Truthy() {
					errs <- fmt.Errorf("eval: %v %v", v, err)
					return
				}
				if w := s.Root().TotalStaticPower().Value; w != 40 {
					errs <- fmt.Errorf("static power = %v, want 40", w)
					return
				}
			}
		}(g)
	}
	// Concurrent scrapers rendering the process-wide registry while the
	// readers bump its counters.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := obs.Default().WritePrometheus(io.Discard); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Find is counted once per call; the expression evaluates
	// installed() and num_cores() but no Find. Other tests in the
	// package may add more, never less.
	wantLookups := int64(readers * rounds)
	if d := obs.Default().Counter("xpdl_query_lookups_total", "").Value() - lookupsBefore; d < wantLookups {
		t.Errorf("lookup counter advanced by %d, want >= %d", d, wantLookups)
	}
	wantSelectors := int64(readers * rounds)
	if d := obs.Default().Counter("xpdl_query_selector_evals_total", "").Value() - selectorsBefore; d < wantSelectors {
		t.Errorf("selector counter advanced by %d, want >= %d", d, wantSelectors)
	}
}
