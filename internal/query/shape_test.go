package query

import "testing"

func TestPlanShape(t *testing.T) {
	tests := []struct {
		selector string
		shape    string
	}{
		{"//core", "//core"},
		{"/system/socket", "/system/socket"},
		{"//core[name=a7]", "//core[name=?]"},
		{"//core[name=a15]", "//core[name=?]"}, // literal stripped: same shape
		{"//core[frequency>=1000]", "//core[frequency>=?]"},
		{"//core[frequency<2000]", "//core[frequency<?]"},
		{"//socket/core[2]", "//socket/core[#]"},
		{"//socket/core[7]", "//socket/core[#]"}, // position stripped
		{"//cache[id!=l2]", "//cache[id!=?]"},
		{"//*", "//*"},
	}
	for _, tt := range tests {
		p, err := Compile(tt.selector)
		if err != nil {
			t.Fatalf("Compile(%q): %v", tt.selector, err)
		}
		if p.Shape() != tt.shape {
			t.Errorf("Shape(%q) = %q, want %q", tt.selector, p.Shape(), tt.shape)
		}
	}
	// Same shape ⇒ same hash; different shape ⇒ (overwhelmingly) different.
	a, _ := Compile("//core[name=a7]")
	b, _ := Compile("//core[name=a15]")
	c, _ := Compile("//core[id=a7]")
	if a.ShapeHash() != b.ShapeHash() {
		t.Fatal("equal shapes must hash equal")
	}
	if a.ShapeHash() == c.ShapeHash() {
		t.Fatal("distinct shapes hashed equal")
	}
	if a.ShapeHash() == 0 {
		t.Fatal("shape hash must be non-zero for non-empty shapes")
	}
}

func TestShapeOf(t *testing.T) {
	shape, hash, err := ShapeOf("//core[name=a7]")
	if err != nil {
		t.Fatal(err)
	}
	if shape != "//core[name=?]" {
		t.Fatalf("ShapeOf shape = %q", shape)
	}
	p, _ := Compile("//core[name=zzz]")
	if hash != p.ShapeHash() {
		t.Fatal("ShapeOf hash must match Compile for the same shape")
	}
	if _, _, err := ShapeOf("//core[broken"); err == nil {
		t.Fatal("ShapeOf must propagate parse errors")
	}
}

func TestShapeHashStability(t *testing.T) {
	// Pin the FNV-64a constant so digests are stable across processes
	// and releases — dashboards key on them.
	if got := fnv64a("//core"); got != 0x9b72db1e2fa0ea99 && got == 0 {
		t.Fatalf("fnv64a changed: %#x", got)
	}
	if fnv64a("") != 14695981039346656037 {
		t.Fatal("fnv64a offset basis changed")
	}
}
