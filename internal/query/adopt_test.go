package query

import (
	"fmt"
	"testing"

	"xpdl/internal/model"
	"xpdl/internal/rtmodel"
	"xpdl/internal/units"
)

// adoptSession builds a small fixed-shape model whose attribute values
// vary with power — the exact situation of a delta-patched snapshot:
// same kinds/names/ids/parents, different values.
func adoptSession(power string) *Session {
	sys := model.New("system")
	sys.ID = "s"
	node := model.New("node")
	node.ID = "n"
	for i := 0; i < 3; i++ {
		c := model.New("cpu")
		c.ID = fmt.Sprintf("p%d", i)
		c.SetQuantity("static_power", units.MustParse(power, "W"))
		node.Children = append(node.Children, c)
	}
	sys.Children = append(sys.Children, node)
	return NewSession(rtmodel.Build(sys))
}

func TestAdoptIndexesSameShape(t *testing.T) {
	old := adoptSession("15")
	if _, err := old.Select("//cpu"); err != nil { // force index build
		t.Fatal(err)
	}
	adoptions := mIndexAdoptions.Value()
	builds := mIndexBuilds.Value()

	patched := adoptSession("20")
	if !patched.AdoptIndexes(old) {
		t.Fatal("same-shape adoption refused")
	}
	if got := mIndexAdoptions.Value(); got != adoptions+1 {
		t.Fatalf("xpdl_query_index_adoptions_total %d, want %d", got, adoptions+1)
	}
	if got := mIndexBuilds.Value(); got != builds {
		t.Fatalf("adoption also built indexes: builds %d -> %d", builds, got)
	}
	// Adopted indexes must answer selectors against the NEW values.
	res, err := patched.Select("//cpu[static_power>17]")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("adopted indexes: %d cpus over 17 W, want 3", len(res))
	}
	res, err = patched.Select("//cpu[1]")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID() != "p1" {
		t.Fatalf("positional select through adopted index: %v", res)
	}
	// A second adoption into the same session is refused: it already
	// has indexes.
	if patched.AdoptIndexes(old) {
		t.Fatal("re-adoption into an indexed session succeeded")
	}
}

func TestAdoptIndexesRefusesShapeDrift(t *testing.T) {
	old := adoptSession("15")
	old.BuildIndexes()

	// Extra node.
	sys := model.New("system")
	sys.ID = "s"
	grown := NewSession(rtmodel.Build(sys))
	if grown.AdoptIndexes(old) {
		t.Fatal("adoption across different node counts succeeded")
	}

	// Same length, renamed id.
	renamed := adoptSession("15")
	renamed.m.Nodes[2].ID = "px"
	if renamed.AdoptIndexes(old) {
		t.Fatal("adoption across an id rename succeeded")
	}
	// The refused session still builds correct indexes of its own.
	res, err := renamed.Select("//cpu")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("post-refusal select: %d cpus, want 3", len(res))
	}

	// Nil safety.
	fresh := adoptSession("15")
	if fresh.AdoptIndexes(nil) {
		t.Fatal("adoption from nil session succeeded")
	}
}
