package query

import (
	"fmt"
	"strings"
	"testing"

	"xpdl/internal/model"
	"xpdl/internal/rtmodel"
	"xpdl/internal/units"
)

// diamondSession builds a model where the same core elements are
// reachable through several "//"-axis ancestors — the shape that used
// to shift positional indexing before dedupe ran first.
func diamondSession() *Session {
	sys := model.New("system")
	sys.ID = "d"
	node := model.New("node")
	node.ID = "n"
	cpu := model.New("cpu")
	cpu.ID = "p"
	for i := 0; i < 2; i++ {
		core := model.New("core")
		core.ID = fmt.Sprintf("c%d", i)
		cpu.Children = append(cpu.Children, core)
	}
	node.Children = append(node.Children, cpu)
	sys.Children = append(sys.Children, node)
	return NewSession(rtmodel.Build(sys))
}

// TestSelectIndexAfterDedupe is the regression test for the positional
// predicate semantics: `//*//core` reaches each core once per ancestor
// (node and cpu), so before the fix the raw match list was
// [c0 c1 c0 c1] and [2] returned the duplicate c0. Dedupe must run
// first: [N] counts distinct elements.
func TestSelectIndexAfterDedupe(t *testing.T) {
	s := diamondSession()
	for sel, want := range map[string][]string{
		"//*//core[0]": {"c0"},
		"//*//core[1]": {"c1"},
		"//*//core[2]": nil, // only two distinct cores exist
		"//*//core[3]": nil,
		"//*//core":    {"c0", "c1"},
	} {
		got, err := s.Select(sel)
		if err != nil {
			t.Fatalf("Select(%q): %v", sel, err)
		}
		if fmt.Sprint(ids(got)) != fmt.Sprint(want) {
			t.Errorf("%q = %v, want %v", sel, ids(got), want)
		}
	}
}

// comparisonSession builds one element with a numeric attribute, a
// non-numeric attribute, and (implicitly) a missing one.
func comparisonSession() *Session {
	sys := model.New("system")
	sys.ID = "s"
	d := model.New("device")
	d.ID = "dev"
	d.SetQuantity("num", units.Quantity{Value: 10})
	d.SetAttr("label", model.Attr{Raw: "abc"})
	sys.Children = append(sys.Children, d)
	return NewSession(rtmodel.Build(sys))
}

// TestSelectComparisonSemantics locks in the documented predicate
// semantics: ordered operators are defined only over numbers (either
// side non-numeric → false, never an error), equality falls back to
// exact string comparison, and a missing attribute matches only "!=".
func TestSelectComparisonSemantics(t *testing.T) {
	s := comparisonSession()
	cases := []struct {
		pred  string
		match bool
	}{
		// Numeric attribute vs numeric literal.
		{"num=10", true}, {"num!=10", false},
		{"num>5", true}, {"num<5", false},
		{"num>=10", true}, {"num<=10", true},
		{"num>10", false}, {"num<10", false},
		// Numeric attribute vs non-numeric literal: ordered → false.
		{"num>abc", false}, {"num<abc", false},
		{"num>=abc", false}, {"num<=abc", false},
		{"num=abc", false}, {"num!=abc", true},
		// Non-numeric attribute: ordered operators are always false.
		{"label<zzz", false}, {"label>a", false},
		{"label>=abc", false}, {"label<=abc", false},
		{"label=abc", true}, {"label!=abc", false}, {"label!=xyz", true},
		// Missing attribute: only "!=" matches.
		{"ghost=x", false}, {"ghost!=x", true},
		{"ghost<5", false}, {"ghost>5", false},
		{"ghost>=0", false}, {"ghost<=0", false},
	}
	for _, tc := range cases {
		sel := "//device[" + tc.pred + "]"
		got, err := s.Select(sel)
		if err != nil {
			t.Fatalf("Select(%q): %v", sel, err)
		}
		if matched := len(got) == 1; matched != tc.match {
			t.Errorf("%q matched=%v, want %v", sel, matched, tc.match)
		}
	}
}

func TestPlanCacheLRU(t *testing.T) {
	c := NewPlanCache(2)
	a1, err := c.Get("//a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("//b"); err != nil {
		t.Fatal(err)
	}
	if a2, _ := c.Get("//a"); a2 != a1 {
		t.Fatal("cache hit returned a different plan")
	}
	// "//b" is now LRU; inserting "//c" evicts it.
	if _, err := c.Get("//c"); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if a3, _ := c.Get("//a"); a3 != a1 {
		t.Fatal("recently-used plan was evicted")
	}
	// Parse errors are returned, never cached.
	if _, err := c.Get("//["); err == nil {
		t.Fatal("bad selector compiled")
	}
	if c.Len() != 2 {
		t.Fatalf("error polluted the cache: Len = %d", c.Len())
	}
	c.SetCapacity(1)
	if c.Len() != 1 {
		t.Fatalf("SetCapacity(1) left %d plans", c.Len())
	}
	c.SetCapacity(0)
	if c.Len() != 0 {
		t.Fatal("SetCapacity(0) kept plans resident")
	}
	if _, err := c.Get("//a"); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache stored a plan")
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := NewPlanCache(8)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				sel := fmt.Sprintf("//k%d", (g+i)%12)
				if _, err := c.Get(sel); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() > 8 {
		t.Fatalf("cache exceeded its bound: %d", c.Len())
	}
}

func TestIndexesBuildOnce(t *testing.T) {
	s := NewSession(buildModel())
	if s.idx != nil {
		t.Fatal("indexes built eagerly without BuildIndexes")
	}
	s.BuildIndexes()
	first := s.idx
	if first == nil {
		t.Fatal("BuildIndexes did not build")
	}
	if _, err := s.Select("//core"); err != nil {
		t.Fatal(err)
	}
	s.BuildIndexes()
	if s.idx != first {
		t.Fatal("indexes rebuilt")
	}
}

func TestPlanDescribe(t *testing.T) {
	for sel, want := range map[string]string{
		"//cache[name=L3]":      "index:kind+name",
		"//device[id=gpu1]":     "index:id",
		"//core":                "index:kind",
		"//core[0]":             "index:kind",
		"//cpu[frequency>=2e9]": "index:kind-scan",
		"//cache[name=3]":       "index:kind-scan", // numeric value: attribute comparison
		"//*":                   "walk",
		"node/cpu":              "walk",
	} {
		p, err := Compile(sel)
		if err != nil {
			t.Fatalf("Compile(%q): %v", sel, err)
		}
		if desc := p.Describe(); !strings.Contains(desc, "strategy="+want) {
			t.Errorf("Describe(%q) = %q, want strategy %s", sel, desc, want)
		}
	}
}

// selectorCorpus is every selector shape the package understands —
// the tests' selectors, the serve-layer FuzzSelector seeds, and the
// index fast-path edges (root-kind, numeric identity values,
// duplicate-reach positional indexing).
var selectorCorpus = []string{
	// Basic axes.
	"node", "node/cpu", "node/cache", "//cache", "//core", "node//core",
	"//*", "*", "cpu", "//system", "//system[id=cl]",
	// Predicates.
	"//cache[name=L3]", "//device[type=Nvidia_K20c]", "//device[type=Other]",
	"//cpu[frequency>=3e9]", "//cpu[frequency<3e9]", "//cpu[frequency!=2e9]",
	"//device[role=worker]", "//device[role!=worker]",
	"//power_domain[enableSwitchOff=false]", "//node[id=n1]", "//node[id=ghost]",
	"//core[zzz!=foo]", "//core[zzz=foo]", "//cache[size=15728640]",
	"//cache[name=3]", "//*[name=L3]", "//device[id=gpu1]", "//installed",
	"//cpu[frequency>abc]", "//cache[size<=1e9]",
	// Positional.
	"node[1]/device", "node[5]", "//cpu[0]", "//core[3]", "//core[99]",
	"//*//core[0]", "//*//core[1]", "//*//core[2]", "//*//core",
	// FuzzSelector seeds (serve layer).
	"/system/device[type=gpu]", "/../..",
	// Multi-segment deep chains.
	"//node//cache[name=L3]", "//cpu//core", "node//cpu/cache",
}

// TestPlanWalkerDifferential runs the whole corpus through both the
// pure walker and the indexed plan on several models and requires
// byte-identical results — same elements, same order.
func TestPlanWalkerDifferential(t *testing.T) {
	sessions := map[string]*Session{
		"selector": selectorSession(),
		"gpu":      NewSession(buildModel()),
		"diamond":  diamondSession(),
		"compare":  comparisonSession(),
		"empty":    NewSession(&rtmodel.Model{}),
	}
	for name, s := range sessions {
		for _, sel := range selectorCorpus {
			p, err := Compile(sel)
			if err != nil {
				t.Fatalf("Compile(%q): %v", sel, err)
			}
			want := p.runWalker(s.Root())
			got, err := p.Run(s)
			if err != nil {
				t.Fatalf("%s: Run(%q): %v", name, sel, err)
			}
			if !sameElems(want, got) {
				t.Errorf("%s: %q diverged: walker %v, indexed %v",
					name, sel, ids(want), ids(got))
			}
		}
	}
}

func sameElems(a, b []Elem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].idx != b[i].idx || a[i].s != b[i].s {
			return false
		}
	}
	return true
}

// FuzzPlanDifferential feeds arbitrary selector strings through both
// execution strategies; any input that compiles must produce identical
// element sequences — the property that makes the index fast paths
// safe to serve.
func FuzzPlanDifferential(f *testing.F) {
	for _, sel := range selectorCorpus {
		f.Add(sel)
	}
	f.Add("//cache[")
	f.Add(strings.Repeat("/a", 64))
	f.Add("//core[name=]")
	s := NewSession(buildModel())
	f.Fuzz(func(t *testing.T, sel string) {
		p, err := Compile(sel)
		if err != nil {
			return
		}
		want := p.runWalker(s.Root())
		got, err := p.Run(s)
		if err != nil {
			t.Fatalf("Run(%q): %v", sel, err)
		}
		if !sameElems(want, got) {
			t.Fatalf("%q diverged: walker %v, indexed %v", sel, ids(want), ids(got))
		}
	})
}
