package query

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"

	"xpdl/internal/expr"
	"xpdl/internal/model"
	"xpdl/internal/rtmodel"
	"xpdl/internal/units"
)

// buildModel assembles a GPU-server runtime model resembling the paper's
// liu_gpu_server (Listing 7) after composition.
func buildModel() *rtmodel.Model {
	sys := model.New("system")
	sys.ID = "liu_gpu_server"

	sock := model.New("socket")
	cpu := model.New("cpu")
	cpu.ID = "gpu_host"
	cpu.Type = "Intel_Xeon_E5_2630L"
	cpu.SetQuantity("static_power", units.MustParse("15", "W"))
	cpu.SetQuantity("frequency", units.MustParse("2", "GHz"))
	for i := 0; i < 4; i++ {
		core := model.New("core")
		core.SetQuantity("frequency", units.MustParse("2", "GHz"))
		cpu.Children = append(cpu.Children, core)
	}
	l3 := model.New("cache")
	l3.Name = "L3"
	l3.SetQuantity("size", units.MustParse("15", "MiB"))
	cpu.Children = append(cpu.Children, l3)
	sock.Children = append(sock.Children, cpu)
	sys.Children = append(sys.Children, sock)

	gpu := model.New("device")
	gpu.ID = "gpu1"
	gpu.Type = "Nvidia_K20c"
	gpu.SetQuantity("static_power", units.MustParse("25", "W"))
	gpu.SetAttr("compute_capability", model.Attr{Raw: "3.5",
		Quantity: units.Quantity{Value: 3.5}, HasQuantity: true})
	for i := 0; i < 8; i++ {
		gpu.Children = append(gpu.Children, model.New("core"))
	}
	pm := model.New("programming_model")
	pm.SetAttr("type", model.Attr{Raw: "cuda6.0, opencl"})
	gpu.Children = append(gpu.Children, pm)
	sys.Children = append(sys.Children, gpu)

	sw := model.New("software")
	for _, pkg := range []string{"CUDA_6.0", "CUBLAS_6.0", "StarPU_1.0"} {
		inst := model.New("installed")
		inst.Type = pkg
		inst.SetAttr("path", model.Attr{Raw: "/opt/" + pkg})
		sw.Children = append(sw.Children, inst)
	}
	os := model.New("hostOS")
	os.ID = "linux1"
	os.Type = "Linux_3.10"
	sw.Children = append(sw.Children, os)
	sys.Children = append(sys.Children, sw)

	return rtmodel.Build(sys)
}

func newSession(t *testing.T) *Session {
	t.Helper()
	m := buildModel()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := InitReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInitFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.xrt")
	if err := buildModel().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s, err := Init(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Root().ID() != "liu_gpu_server" {
		t.Fatalf("root id = %q", s.Root().ID())
	}
	if _, err := Init(filepath.Join(t.TempDir(), "nope.xrt")); err == nil {
		t.Fatal("missing file should error")
	}
	if s.Model() == nil {
		t.Fatal("Model accessor nil")
	}
}

func TestBrowsing(t *testing.T) {
	s := newSession(t)
	root := s.Root()
	if !root.Valid() || root.Kind() != "system" {
		t.Fatalf("root = %v %q", root.Valid(), root.Kind())
	}
	kids := root.Children()
	if len(kids) != 3 {
		t.Fatalf("children = %d", len(kids))
	}
	socks := root.ChildrenOfKind("socket")
	if len(socks) != 1 {
		t.Fatalf("sockets = %d", len(socks))
	}
	cpu, ok := s.Find("gpu_host")
	if !ok || cpu.TypeName() != "Intel_Xeon_E5_2630L" {
		t.Fatalf("find cpu: %v", ok)
	}
	parent, ok := cpu.Parent()
	if !ok || parent.Kind() != "socket" {
		t.Fatal("parent browsing failed")
	}
	if _, ok := root.Parent(); ok {
		t.Fatal("root should have no parent")
	}
	cores := cpu.Descendants("core")
	if len(cores) != 4 {
		t.Fatalf("cpu cores = %d", len(cores))
	}
	if _, ok := cpu.FirstChild("cache"); !ok {
		t.Fatal("FirstChild cache failed")
	}
	if _, ok := cpu.FirstChild("gpu"); ok {
		t.Fatal("FirstChild should miss")
	}
	if _, ok := s.Find("ghost"); ok {
		t.Fatal("ghost found")
	}
	// Path of a core under the cpu.
	if got := cpu.Path(); got != "liu_gpu_server/gpu_host" {
		t.Fatalf("path = %q", got)
	}
}

func TestGetters(t *testing.T) {
	s := newSession(t)
	cpu, _ := s.Find("gpu_host")
	if v, ok := cpu.GetString("static_power"); !ok || v == "" {
		t.Fatalf("GetString = %q %v", v, ok)
	}
	if f, ok := cpu.GetFloat("frequency"); !ok || f != 2e9 {
		t.Fatalf("GetFloat = %v %v", f, ok)
	}
	q, ok := cpu.GetQuantity("static_power")
	if !ok || q.Dim != units.Power || q.Value != 15 {
		t.Fatalf("GetQuantity = %+v", q)
	}
	gpu, _ := s.Find("gpu1")
	if n, ok := gpu.GetInt("compute_capability"); !ok || n != 3 {
		t.Fatalf("GetInt = %d %v", n, ok)
	}
	if _, ok := gpu.GetFloat("nonexistent"); ok {
		t.Fatal("missing attr returned")
	}
	if _, ok := gpu.GetBool("compute_capability"); ok {
		t.Fatal("non-bool parsed as bool")
	}
	pd := model.New("power_domain")
	pd.SetAttr("enableSwitchOff", model.Attr{Raw: "false"})
	m := rtmodel.Build(pd)
	s2 := NewSession(m)
	if b, ok := s2.Root().GetBool("enableSwitchOff"); !ok || b {
		t.Fatalf("GetBool = %v %v", b, ok)
	}
}

func TestDerivedAnalysis(t *testing.T) {
	s := newSession(t)
	root := s.Root()
	if n := root.NumCores(); n != 12 {
		t.Fatalf("NumCores = %d", n)
	}
	if n := root.NumCUDADevices(); n != 1 {
		t.Fatalf("NumCUDADevices = %d", n)
	}
	p := root.TotalStaticPower()
	if p.Value != 40 || p.Dim != units.Power {
		t.Fatalf("TotalStaticPower = %+v", p)
	}
	if v := root.SumAttr("frequency"); v != 2e9*5 {
		t.Fatalf("SumAttr(frequency) = %v", v)
	}
	if mn, ok := root.MinAttr("static_power"); !ok || mn != 15 {
		t.Fatalf("MinAttr = %v %v", mn, ok)
	}
	if _, ok := root.MinAttr("zz"); ok {
		t.Fatal("MinAttr on absent attr")
	}
}

func TestSoftwareIntrospection(t *testing.T) {
	s := newSession(t)
	if !s.Installed("CUBLAS") || !s.Installed("CUDA") || !s.Installed("StarPU") {
		t.Fatal("installed software not found")
	}
	if s.Installed("MKL") {
		t.Fatal("MKL should not be installed")
	}
	if !s.Installed("linux1") {
		t.Fatal("hostOS lookup by id failed")
	}
	list := s.InstalledList()
	if len(list) != 4 {
		t.Fatalf("installed list = %v", list)
	}
	if !s.HasKind("device") || s.HasKind("cluster") {
		t.Fatal("HasKind wrong")
	}
}

func TestEnvConstraints(t *testing.T) {
	s := newSession(t)
	env := s.Env(map[string]expr.Value{"density": expr.Number(0.02)})
	cases := map[string]bool{
		`installed('CUBLAS') && num_cuda_devices() > 0`: true,
		`installed('MKL')`:                          false,
		`num_cores() >= 4`:                          true,
		`has_kind('device') && density > 0.01`:      true,
		`density > 0.5`:                             false,
		`total_static_power() == 40`:                true,
		`attr('gpu1', 'compute_capability') >= 3.5`: true,
		`attr('gpu1', 'compute_capability') > 5`:    false,
		`attr('ghost', 'x') == 0`:                   true,
		`attr('gpu_host', 'nonexistent') == 0`:      true,
		`min(num_cores(), 3) == 3`:                  true,
	}
	for src, want := range cases {
		got, err := expr.EvalBool(src, env)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	s := newSession(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if s.Root().NumCores() != 12 {
					t.Error("NumCores changed")
					return
				}
				if _, ok := s.Find("gpu1"); !ok {
					t.Error("Find failed")
					return
				}
				s.Installed("CUBLAS")
			}
		}()
	}
	wg.Wait()
}

func TestEmptyModel(t *testing.T) {
	s := NewSession(&rtmodel.Model{})
	if s.Root().Valid() {
		t.Fatal("empty model root should be invalid")
	}
	if s.HasKind("cpu") || s.Installed("x") || s.InstalledList() != nil {
		t.Fatal("empty model introspection should be empty")
	}
}
