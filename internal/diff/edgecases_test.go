package diff

import (
	"testing"

	"xpdl/internal/model"
	"xpdl/internal/units"
)

// Edge cases the delta-refresh analysis leans on: what the attribute
// diff can and cannot see decides when an in-place patch is sound, so
// these behaviors are pinned here.

// TestReorderIdentifiedChildrenInvisible: reordering children that
// carry identifiers produces no changes — paths are identity-based,
// not positional. This is exactly why incremental resolution must
// hash canonical renderings too: a pure reorder changes positional
// selector results (//cpu[1]) while the diff sees nothing.
func TestReorderIdentifiedChildrenInvisible(t *testing.T) {
	mk := func(order []string) *model.Component {
		sys := model.New("system")
		sys.ID = "srv"
		for _, id := range order {
			c := model.New("cpu")
			c.ID = id
			sys.Children = append(sys.Children, c)
		}
		return sys
	}
	changes := Diff(mk([]string{"a", "b", "c"}), mk([]string{"c", "a", "b"}))
	if len(changes) != 0 {
		t.Fatalf("identified reorder produced changes: %v", changes)
	}
}

// TestReorderAnonymousSiblingsIsPositional: anonymous same-kind
// siblings align by ordinal, so swapping two of them with different
// attributes shows up as attribute changes on both positions — the
// diff cannot distinguish a reorder from two edits.
func TestReorderAnonymousSiblingsIsPositional(t *testing.T) {
	mk := func(freqs []string) *model.Component {
		sys := model.New("system")
		sys.ID = "srv"
		for _, f := range freqs {
			c := model.New("core")
			c.SetQuantity("frequency", units.MustParse(f, "GHz"))
			sys.Children = append(sys.Children, c)
		}
		return sys
	}
	changes := Diff(mk([]string{"1", "2"}), mk([]string{"2", "1"}))
	if len(changes) != 2 {
		t.Fatalf("anonymous reorder: %d changes, want 2 positional attr edits: %v", len(changes), changes)
	}
	for _, ch := range changes {
		if ch.Kind != AttrChanged || ch.Attr != "frequency" {
			t.Fatalf("anonymous reorder produced %v", ch)
		}
	}
}

// TestDuplicateIDSiblings: two siblings sharing an identifier are
// disambiguated with ordinals, so removing the second copy is reported
// against the ordinal path — not silently merged into the first.
func TestDuplicateIDSiblings(t *testing.T) {
	mk := func(dups int) *model.Component {
		sys := model.New("system")
		sys.ID = "srv"
		for i := 0; i < dups; i++ {
			c := model.New("device")
			c.ID = "gpu" // deliberately identical
			c.SetQuantity("static_power", units.MustParse("25", "W"))
			sys.Children = append(sys.Children, c)
		}
		return sys
	}
	changes := Diff(mk(2), mk(1))
	if len(changes) != 1 || changes[0].Kind != Removed || changes[0].Path != "/srv/gpu#2" {
		t.Fatalf("duplicate-id removal: %v", changes)
	}
	// And editing only the second copy lands on the ordinal path.
	newM := mk(2)
	newM.Children[1].SetQuantity("static_power", units.MustParse("30", "W"))
	changes = Diff(mk(2), newM)
	if len(changes) != 1 || changes[0].Kind != AttrChanged || changes[0].Path != "/srv/gpu#2" {
		t.Fatalf("duplicate-id edit: %v", changes)
	}
}

// TestAddRemoveSameSubtreeOneCycle: moving a subtree — removing it
// from one parent and adding an identical copy under another in the
// same cycle — must surface as one Removed plus one Added, never
// cancel out to a no-op.
func TestAddRemoveSameSubtreeOneCycle(t *testing.T) {
	mk := func(under string) *model.Component {
		sys := model.New("system")
		sys.ID = "srv"
		for _, nodeID := range []string{"n0", "n1"} {
			n := model.New("node")
			n.ID = nodeID
			if nodeID == under {
				gpu := model.New("device")
				gpu.ID = "gpu1"
				gpu.SetQuantity("static_power", units.MustParse("25", "W"))
				cache := model.New("cache")
				cache.Name = "L2"
				gpu.Children = append(gpu.Children, cache)
				n.Children = append(n.Children, gpu)
			}
			sys.Children = append(sys.Children, n)
		}
		return sys
	}
	changes := Diff(mk("n0"), mk("n1"))
	var addedPaths, removedPaths []string
	for _, ch := range changes {
		switch ch.Kind {
		case Added:
			addedPaths = append(addedPaths, ch.Path)
		case Removed:
			removedPaths = append(removedPaths, ch.Path)
		default:
			t.Fatalf("unexpected change: %v", ch)
		}
	}
	wantRemoved := map[string]bool{"/srv/n0/gpu1": true, "/srv/n0/gpu1/L2": true}
	wantAdded := map[string]bool{"/srv/n1/gpu1": true, "/srv/n1/gpu1/L2": true}
	if len(removedPaths) != 2 || len(addedPaths) != 2 {
		t.Fatalf("moved subtree: %d removed, %d added: %v", len(removedPaths), len(addedPaths), changes)
	}
	for _, p := range removedPaths {
		if !wantRemoved[p] {
			t.Fatalf("unexpected removed path %s", p)
		}
	}
	for _, p := range addedPaths {
		if !wantAdded[p] {
			t.Fatalf("unexpected added path %s", p)
		}
	}
	// Same subtree removed and re-added at the SAME path in one cycle
	// (delete + recreate) is invisible to the diff when content is
	// identical — the canonical hash, not the diff, must catch any
	// content drift.
	if changes := Diff(mk("n0"), mk("n0")); len(changes) != 0 {
		t.Fatalf("recreated identical subtree produced changes: %v", changes)
	}
}

// TestRenderAttrForms pins the rendering contract the delta patch path
// matches values against.
func TestRenderAttrForms(t *testing.T) {
	cases := []struct {
		a       model.Attr
		present bool
		want    string
	}{
		{model.Attr{}, false, "<absent>"},
		{model.Attr{Raw: "x", Unknown: true}, true, "?"},
		{model.Attr{Raw: "2", Quantity: units.MustParse("2", "GHz"), HasQuantity: true}, true, "2 GHz"},
		{model.Attr{Raw: "plain"}, true, "plain"},
	}
	for i, c := range cases {
		if got := RenderAttr(c.a, c.present); got != c.want {
			t.Errorf("case %d: RenderAttr = %q, want %q", i, got, c.want)
		}
	}
}
