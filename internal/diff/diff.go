// Package diff compares two composed XPDL models — the maintenance
// companion of a distributed descriptor repository: when a manufacturer
// publishes an updated descriptor or a system is reconfigured, the diff
// shows which components appeared, disappeared, or changed attributes,
// so repository maintainers and optimization layers can see exactly
// what a platform update means.
package diff

import (
	"fmt"
	"sort"
	"strings"

	"xpdl/internal/model"
)

// ChangeKind classifies one difference.
type ChangeKind int

// Change kinds.
const (
	Added ChangeKind = iota
	Removed
	AttrChanged
)

// Change is one difference between the two models.
type Change struct {
	Kind ChangeKind
	// Path identifies the component (slash-joined idents/kinds).
	Path string
	// Attr / Old / New describe attribute-level changes.
	Attr string
	Old  string
	New  string
}

// String renders the change in a diff-like form.
func (c Change) String() string {
	switch c.Kind {
	case Added:
		return "+ " + c.Path
	case Removed:
		return "- " + c.Path
	default:
		return fmt.Sprintf("~ %s %s: %q -> %q", c.Path, c.Attr, c.Old, c.New)
	}
}

// Diff compares two component trees. Components are identified by their
// path of idents (falling back to kind plus sibling ordinal), so
// homogeneous group members align positionally.
func Diff(oldRoot, newRoot *model.Component) []Change {
	oldIdx := index(oldRoot)
	newIdx := index(newRoot)

	var changes []Change
	paths := make([]string, 0, len(oldIdx)+len(newIdx))
	seen := map[string]bool{}
	for p := range oldIdx {
		paths = append(paths, p)
		seen[p] = true
	}
	for p := range newIdx {
		if !seen[p] {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	for _, p := range paths {
		oc, inOld := oldIdx[p]
		nc, inNew := newIdx[p]
		switch {
		case inOld && !inNew:
			changes = append(changes, Change{Kind: Removed, Path: p})
		case !inOld && inNew:
			changes = append(changes, Change{Kind: Added, Path: p})
		default:
			changes = append(changes, diffAttrs(p, oc, nc)...)
		}
	}
	return changes
}

func diffAttrs(path string, oc, nc *model.Component) []Change {
	var out []Change
	names := map[string]bool{}
	for k := range oc.Attrs {
		names[k] = true
	}
	for k := range nc.Attrs {
		names[k] = true
	}
	sorted := make([]string, 0, len(names))
	for k := range names {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		ov, inOld := oc.Attrs[k]
		nv, inNew := nc.Attrs[k]
		oldS, newS := renderAttr(ov, inOld), renderAttr(nv, inNew)
		if oldS != newS {
			out = append(out, Change{
				Kind: AttrChanged, Path: path, Attr: k, Old: oldS, New: newS,
			})
		}
	}
	if oc.Type != nc.Type {
		out = append(out, Change{
			Kind: AttrChanged, Path: path, Attr: "type", Old: oc.Type, New: nc.Type,
		})
	}
	return out
}

func renderAttr(a model.Attr, present bool) string {
	if !present {
		return "<absent>"
	}
	if a.Unknown {
		return "?"
	}
	if a.HasQuantity {
		return a.Quantity.String()
	}
	return a.Raw
}

// RenderAttr is the comparison rendering Diff uses for attribute
// values ("<absent>" when the attribute is missing, "?" for unknowns,
// the normalized quantity when one was parsed, the raw text
// otherwise). The incremental re-resolution layer matches resolved
// attribute values against diff output with it, so both sides must
// agree on the rendering byte for byte.
func RenderAttr(a model.Attr, present bool) string {
	return renderAttr(a, present)
}

// index flattens a tree into path → component.
func index(root *model.Component) map[string]*model.Component {
	out := map[string]*model.Component{}
	var rec func(c *model.Component, prefix string)
	rec = func(c *model.Component, prefix string) {
		seg := c.Ident()
		if seg == "" {
			seg = c.Kind
		}
		path := prefix + "/" + seg
		// Disambiguate same-named siblings with ordinals.
		if _, dup := out[path]; dup {
			for i := 2; ; i++ {
				cand := fmt.Sprintf("%s#%d", path, i)
				if _, d := out[cand]; !d {
					path = cand
					break
				}
			}
		}
		out[path] = c
		for _, ch := range c.Children {
			rec(ch, path)
		}
	}
	rec(root, "")
	return out
}

// Summary counts changes per kind.
func Summary(changes []Change) (added, removed, changed int) {
	for _, c := range changes {
		switch c.Kind {
		case Added:
			added++
		case Removed:
			removed++
		default:
			changed++
		}
	}
	return
}

// Render joins all changes, one per line.
func Render(changes []Change) string {
	lines := make([]string, len(changes))
	for i, c := range changes {
		lines[i] = c.String()
	}
	return strings.Join(lines, "\n")
}
