package diff

import (
	"strings"
	"testing"

	"xpdl/internal/model"
	"xpdl/internal/units"
)

func server(gpuPower string, withMem bool) *model.Component {
	sys := model.New("system")
	sys.ID = "srv"
	cpu := model.New("cpu")
	cpu.ID = "cpu0"
	cpu.Type = "Xeon"
	cpu.SetQuantity("frequency", units.MustParse("2", "GHz"))
	sys.Children = append(sys.Children, cpu)
	gpu := model.New("device")
	gpu.ID = "gpu1"
	gpu.SetQuantity("static_power", units.MustParse(gpuPower, "W"))
	sys.Children = append(sys.Children, gpu)
	if withMem {
		mem := model.New("memory")
		mem.ID = "mem0"
		sys.Children = append(sys.Children, mem)
	}
	return sys
}

func TestNoChanges(t *testing.T) {
	changes := Diff(server("25", true), server("25", true))
	if len(changes) != 0 {
		t.Fatalf("changes = %v", changes)
	}
}

func TestAddRemoveChange(t *testing.T) {
	oldM := server("25", true)
	newM := server("30", false) // power changed, memory removed
	extra := model.New("device")
	extra.ID = "gpu2"
	newM.Children = append(newM.Children, extra)

	changes := Diff(oldM, newM)
	added, removed, changed := Summary(changes)
	if added != 1 || removed != 1 || changed != 1 {
		t.Fatalf("summary = %d/%d/%d: %v", added, removed, changed, changes)
	}
	text := Render(changes)
	for _, want := range []string{
		"+ /srv/gpu2",
		"- /srv/mem0",
		`~ /srv/gpu1 static_power: "25 W" -> "30 W"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("diff missing %q:\n%s", want, text)
		}
	}
}

func TestTypeChangeAndUnknown(t *testing.T) {
	oldM := server("25", false)
	newM := server("25", false)
	newM.FindByID("cpu0").Type = "Xeon_v2"
	newM.FindByID("gpu1").SetAttr("energy_offset", model.Attr{Raw: "?", Unknown: true})

	changes := Diff(oldM, newM)
	text := Render(changes)
	if !strings.Contains(text, `type: "Xeon" -> "Xeon_v2"`) {
		t.Errorf("type change missing:\n%s", text)
	}
	if !strings.Contains(text, `energy_offset: "<absent>" -> "?"`) {
		t.Errorf("unknown attr change missing:\n%s", text)
	}
}

func TestAnonymousSiblingsAlign(t *testing.T) {
	mk := func(n int) *model.Component {
		sys := model.New("system")
		sys.ID = "s"
		for i := 0; i < n; i++ {
			sys.Children = append(sys.Children, model.New("core"))
		}
		return sys
	}
	changes := Diff(mk(2), mk(3))
	added, removed, changed := Summary(changes)
	if added != 1 || removed != 0 || changed != 0 {
		t.Fatalf("summary = %d/%d/%d: %v", added, removed, changed, changes)
	}
}
