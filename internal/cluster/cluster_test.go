package cluster

import (
	"path/filepath"
	"runtime"
	"testing"

	"xpdl/internal/model"
	"xpdl/internal/repo"
	"xpdl/internal/resolve"
)

func xsCluster(t *testing.T) *Cluster {
	t.Helper()
	_, file, _, _ := runtime.Caller(0)
	models := filepath.Join(filepath.Dir(file), "..", "..", "models")
	rp, err := repo.New(models)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := FromSystemID(resolve.New(rp), "XScluster")
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestFromXSClusterModel(t *testing.T) {
	cl := xsCluster(t)
	if len(cl.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(cl.Nodes))
	}
	for _, n := range cl.Nodes {
		// Node static power: 2 CPUs (15 W) + 4 DIMMs (1.5 W) + 22 + 25 W GPUs.
		if n.StaticW != 83 {
			t.Errorf("node %s static = %g", n.ID, n.StaticW)
		}
		if n.PSM == nil {
			t.Errorf("node %s has no PSM (E5_psm expected)", n.ID)
		}
		if n.FreqHz != 2e9 {
			t.Errorf("node %s freq = %g", n.ID, n.FreqHz)
		}
	}
	// The replica-group identifiers are the node names.
	ids := map[string]bool{}
	for _, n := range cl.Nodes {
		ids[n.ID] = true
	}
	for _, want := range []string{"n0", "n1", "n2", "n3"} {
		if !ids[want] {
			t.Errorf("node id %s missing (have %v)", want, cl.Nodes)
		}
	}
	// Ring links attached from the InfiniBand interconnects.
	linked := 0
	for _, n := range cl.Nodes {
		if n.Link.BandwidthBps > 0 {
			linked++
		}
	}
	if linked != 4 {
		t.Fatalf("linked nodes = %d", linked)
	}
}

func TestRunBalancedPhases(t *testing.T) {
	cl := xsCluster(t)
	phases := []Phase{
		{Name: "compute", Cycles: 2e9, Bytes: 64 << 20, Messages: 64},
		{Name: "reduce", Cycles: 5e8, Bytes: 1 << 20},
	}
	maxRep, err := cl.Run(phases, MaxFrequency)
	if err != nil {
		t.Fatal(err)
	}
	if maxRep.TimeS <= 0 || maxRep.TotalJ <= 0 {
		t.Fatalf("degenerate report: %+v", maxRep)
	}
	if len(maxRep.PerPhase) != 2 {
		t.Fatalf("phases = %d", len(maxRep.PerPhase))
	}
	// Totals decompose.
	sum := maxRep.ComputeJ + maxRep.CommJ + maxRep.StaticJ
	if sum != maxRep.TotalJ {
		t.Fatalf("decomposition broken: %g vs %g", sum, maxRep.TotalJ)
	}
	// Communication both costs time and energy.
	if maxRep.CommJ <= 0 {
		t.Fatal("no communication energy")
	}
	// Balanced load leaves no slack: energy-optimal equals max-frequency
	// compute time and cannot do better than marginally.
	optRep, err := cl.Run(phases, EnergyOptimal)
	if err != nil {
		t.Fatal(err)
	}
	if optRep.TimeS > maxRep.TimeS*1.0001 {
		t.Fatalf("optimal slower: %g vs %g", optRep.TimeS, maxRep.TimeS)
	}
	if optRep.TotalJ > maxRep.TotalJ*1.0001 {
		t.Fatalf("optimal uses more energy: %g vs %g", optRep.TotalJ, maxRep.TotalJ)
	}
	if ids := maxRep.NodeIDs(); len(ids) != 4 {
		t.Fatalf("node ids = %v", ids)
	}
}

func TestImbalanceCreatesDVFSSavings(t *testing.T) {
	cl := xsCluster(t)
	// Node 0 carries 2x the work of the others: the light nodes have
	// slack that energy-optimal DVFS converts into savings.
	phases := []Phase{{
		Name:          "imbalanced",
		PerNodeCycles: []float64{4e9, 2e9, 2e9, 2e9},
		Bytes:         1 << 20,
	}}
	maxRep, err := cl.Run(phases, MaxFrequency)
	if err != nil {
		t.Fatal(err)
	}
	optRep, err := cl.Run(phases, EnergyOptimal)
	if err != nil {
		t.Fatal(err)
	}
	if optRep.ComputeJ >= maxRep.ComputeJ {
		t.Fatalf("no compute savings: %g vs %g", optRep.ComputeJ, maxRep.ComputeJ)
	}
	// The phase still finishes with the slowest node.
	if optRep.TimeS > maxRep.TimeS*1.0001 {
		t.Fatalf("deadline busted: %g vs %g", optRep.TimeS, maxRep.TimeS)
	}
	saved := (maxRep.TotalJ - optRep.TotalJ) / maxRep.TotalJ
	if saved <= 0.005 {
		t.Fatalf("savings too small: %.2f%%", saved*100)
	}
}

func TestFromModelErrors(t *testing.T) {
	if _, err := FromModel(model.New("system")); err == nil {
		t.Fatal("nodeless system accepted")
	}
	empty := &Cluster{}
	if _, err := empty.Run([]Phase{{Cycles: 1}}, MaxFrequency); err == nil {
		t.Fatal("empty cluster simulated")
	}
}

func TestNodeIdentFallbacks(t *testing.T) {
	sys := model.New("system")
	sys.ID = "s"
	n1 := model.New("node")
	n1.ID = "explicit"
	n2 := model.New("node")
	sys.Children = append(sys.Children, n1, n2)
	cl, err := FromModel(sys)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Nodes[0].ID != "explicit" {
		t.Fatalf("explicit id lost: %v", cl.Nodes[0].ID)
	}
	if cl.Nodes[1].ID != "node1" {
		t.Fatalf("fallback id = %v", cl.Nodes[1].ID)
	}
}
