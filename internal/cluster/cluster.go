// Package cluster simulates system-wide execution of phased workloads
// on a composed XPDL cluster model — the EXCESS project's headline goal
// ("a generic framework for system-wide energy optimization", Section I)
// expressed over this reproduction's substrate: per-node compute phases
// priced by the nodes' power state machines, inter-node communication
// priced by the interconnect transfer costs, and idle residency priced
// by the static power attributes, all pulled from the platform model.
package cluster

import (
	"fmt"
	"sort"

	"xpdl/internal/energy"
	"xpdl/internal/model"
	"xpdl/internal/power"
	"xpdl/internal/resolve"
)

// Phase is one step of a bulk-synchronous workload: every node computes
// Cycles, then exchanges Bytes with its ring neighbor, then all nodes
// synchronize.
type Phase struct {
	Name   string
	Cycles float64
	Bytes  int64
	// Messages the exchange is split into (default 1).
	Messages int64
	// PerNodeCycles overrides Cycles per node (indexed in node order)
	// for load-imbalanced phases; imbalance creates the slack that
	// energy-optimal DVFS exploits on the lighter nodes.
	PerNodeCycles []float64
}

// cycles returns the work of node i in this phase.
func (p Phase) cycles(i int) float64 {
	if i < len(p.PerNodeCycles) {
		return p.PerNodeCycles[i]
	}
	return p.Cycles
}

// NodeModel is the per-node execution model extracted from the cluster.
type NodeModel struct {
	ID string
	// PSM prices compute at each DVFS level; nil means a fixed
	// frequency/power model from the node attributes.
	PSM *power.StateMachine
	// StaticW is the node's baseline power (incl. residual share).
	StaticW float64
	// FreqHz/ActiveW are used when no PSM is available.
	FreqHz  float64
	ActiveW float64
	// Link prices the exchange to the ring neighbor.
	Link energy.TransferCost
}

// Cluster is the extracted simulation model.
type Cluster struct {
	Nodes []NodeModel
}

// FromModel extracts the simulation model from a composed system tree:
// nodes in document order, each with its static power rollup, its first
// CPU frequency, its PSM if one is modeled, and the outgoing inter-node
// interconnect channel costs.
func FromModel(sys *model.Component) (*Cluster, error) {
	var nodes []*model.Component
	sys.Walk(func(c *model.Component) bool {
		if c.Kind == "node" {
			nodes = append(nodes, c)
			return false
		}
		return true
	})
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: model %s has no nodes", sys.Ident())
	}

	// Ring links: interconnect instances whose head is a node container
	// id (nodes are wrapped in replica groups named n0, n1, ...).
	links := map[string]energy.TransferCost{}
	sys.Walk(func(c *model.Component) bool {
		if c.Kind != "interconnect" || c.AttrRaw("head") == "" {
			return true
		}
		src := c.AttrRaw("head")
		pick := c
		if ch := c.FirstChildKind("channel"); ch != nil {
			pick = ch
		}
		links[src] = energy.ChannelCost(pick)
		return true
	})

	cl := &Cluster{}
	for i, n := range nodes {
		nm := NodeModel{ID: nodeIdent(sys, n, i), FreqHz: 2e9, ActiveW: 80}
		nm.StaticW = energy.StaticBreakdown(n).TotalW
		if q, ok := n.QuantityAttr("residual_static_power"); ok {
			nm.StaticW += q.Value
		}
		// First CPU (or CPU-core) frequency in the node; GPUs are not
		// the node's control processors, so device subtrees are skipped.
		foundFreq := false
		n.Walk(func(c *model.Component) bool {
			if foundFreq || c.Kind == "device" || c.Kind == "gpu" {
				return false
			}
			if c.Kind == "cpu" || c.Kind == "core" {
				if q, ok := c.QuantityAttr("frequency"); ok && q.Value > 0 {
					nm.FreqHz = q.Value
					foundFreq = true
					return false
				}
			}
			return true
		})
		// PSM, if modeled under the node.
		n.Walk(func(c *model.Component) bool {
			if c.Kind == "power_state_machine" && nm.PSM == nil {
				if sm, err := power.StateMachineFromComponent(c); err == nil {
					nm.PSM = sm
				}
			}
			return true
		})
		nm.Link = links[nm.ID]
		cl.Nodes = append(cl.Nodes, nm)
	}
	return cl, nil
}

// nodeIdent finds the replica-group identifier that wraps a node (the
// n0..nN-1 ids of Listing 11), falling back to the node's own id or a
// positional name.
func nodeIdent(sys, node *model.Component, idx int) string {
	if node.ID != "" {
		return node.ID
	}
	id := ""
	var rec func(c *model.Component, wrapper string) bool
	rec = func(c *model.Component, wrapper string) bool {
		if c == node {
			id = wrapper
			return true
		}
		w := wrapper
		if c.Kind == "group" && c.ID != "" {
			w = c.ID
		}
		for _, ch := range c.Children {
			if rec(ch, w) {
				return true
			}
		}
		return false
	}
	rec(sys, "")
	if id == "" {
		id = fmt.Sprintf("node%d", idx)
	}
	return id
}

// Policy selects how compute phases are priced on a node.
type Policy int

// Policies.
const (
	// MaxFrequency runs every phase at the fastest available state.
	MaxFrequency Policy = iota
	// EnergyOptimal picks the PSM state minimizing phase energy under
	// the phase deadline implied by the slowest node (set per Run call).
	EnergyOptimal
)

// Report is the outcome of simulating a workload.
type Report struct {
	Policy     Policy
	TimeS      float64
	ComputeJ   float64
	CommJ      float64
	StaticJ    float64
	PerPhase   []PhaseReport
	TotalJ     float64
	perNodeIDs []string
}

// PhaseReport records one phase's timing and energy.
type PhaseReport struct {
	Name    string
	TimeS   float64
	EnergyJ float64
}

// NodeIDs returns the simulated node identifiers.
func (r *Report) NodeIDs() []string { return r.perNodeIDs }

// Run simulates the phases under the given policy. Bulk-synchronous
// semantics: each phase ends when the slowest node finishes compute and
// the ring exchange completes; nodes idling within a phase draw their
// static power for the full phase duration.
func (cl *Cluster) Run(phases []Phase, policy Policy) (*Report, error) {
	if len(cl.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes to simulate")
	}
	rep := &Report{Policy: policy}
	for _, n := range cl.Nodes {
		rep.perNodeIDs = append(rep.perNodeIDs, n.ID)
	}
	sort.Strings(rep.perNodeIDs)

	for _, ph := range phases {
		msgs := ph.Messages
		if msgs <= 0 {
			msgs = 1
		}
		// First pass: per-node compute times at max frequency define the
		// phase deadline.
		maxT := 0.0
		compT := make([]float64, len(cl.Nodes))
		for i, n := range cl.Nodes {
			f := n.FreqHz
			switchT := 0.0
			if n.PSM != nil {
				fastest := n.PSM.States[0]
				for _, s := range n.PSM.States {
					if s.FreqHz > fastest.FreqHz {
						fastest = s
					}
				}
				if fastest.FreqHz > 0 {
					f = fastest.FreqHz
				}
				// Switching into the fastest state is part of the
				// node's phase time.
				if tt, _, ok := n.PSM.PathCost(n.PSM.States[0].Name, fastest.Name); ok {
					switchT = tt
				}
			}
			if f <= 0 {
				return nil, fmt.Errorf("cluster: node %s has no usable frequency", n.ID)
			}
			compT[i] = switchT + ph.cycles(i)/f
			if compT[i] > maxT {
				maxT = compT[i]
			}
		}
		phaseRep := PhaseReport{Name: ph.Name}
		commMax := 0.0
		for i, n := range cl.Nodes {
			var eCompute float64
			var tCompute float64
			switch {
			case policy == EnergyOptimal && n.PSM != nil:
				from := n.PSM.States[0].Name
				plan, err := n.PSM.Optimize(from, power.Workload{
					Cycles: ph.cycles(i), DeadlineS: maxT,
				})
				if err != nil {
					return nil, fmt.Errorf("cluster: node %s phase %s: %w", n.ID, ph.Name, err)
				}
				eCompute, tCompute = plan.EnergyJ, plan.TimeS
			case n.PSM != nil:
				from := n.PSM.States[0].Name
				plan, err := n.PSM.AlwaysMax(from, power.Workload{
					Cycles: ph.cycles(i), DeadlineS: maxT,
				})
				if err != nil {
					return nil, err
				}
				eCompute, tCompute = plan.EnergyJ, plan.TimeS
			default:
				tCompute = compT[i]
				eCompute = n.ActiveW * tCompute
			}
			rep.ComputeJ += eCompute
			if tCompute > phaseRep.TimeS {
				phaseRep.TimeS = tCompute
			}
			// Ring exchange.
			if ph.Bytes > 0 {
				ct, ce := n.Link.Cost(ph.Bytes, msgs)
				rep.CommJ += ce
				if ct > commMax {
					commMax = ct
				}
			}
		}
		if phaseRep.TimeS < maxT {
			phaseRep.TimeS = maxT
		}
		phaseRep.TimeS += commMax
		// Static residency of every node over the whole phase.
		for _, n := range cl.Nodes {
			rep.StaticJ += n.StaticW * phaseRep.TimeS
		}
		phaseRep.EnergyJ = rep.ComputeJ + rep.CommJ + rep.StaticJ - rep.TotalJ
		rep.TimeS += phaseRep.TimeS
		rep.TotalJ = rep.ComputeJ + rep.CommJ + rep.StaticJ
		rep.PerPhase = append(rep.PerPhase, phaseRep)
	}
	return rep, nil
}

// FromSystemID composes the named system via the resolver and extracts
// the simulation model — a convenience for tools.
func FromSystemID(r *resolve.Resolver, systemID string) (*Cluster, error) {
	sys, err := r.ResolveSystem(systemID)
	if err != nil {
		return nil, err
	}
	return FromModel(sys)
}
