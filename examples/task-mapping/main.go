// Task mapping: use the platform model to place a mixed task set onto
// the GPU server's CPU and GPU, comparing a performance-greedy policy
// against an energy-greedy policy under a deadline — the kind of
// platform-aware, energy-oriented optimization the EXCESS framework
// layers on top of XPDL (Section IV).
//
// Run from the repository root:
//
//	go run ./examples/task-mapping
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"xpdl"
	"xpdl/internal/mapping"
	"xpdl/internal/query"
)

func main() {
	models := flag.String("models", "models", "model repository directory")
	flag.Parse()

	tc, err := xpdl.NewToolchain(xpdl.Options{SearchPaths: []string{*models}})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tc.Process("liu_gpu_server")
	if err != nil {
		log.Fatal(err)
	}
	s := query.NewSession(res.Runtime)

	targets := mapping.TargetsFromSession(s)
	fmt.Println("execution targets from the platform model:")
	for _, g := range targets {
		fmt.Printf("  %-10s %-7s %6.2f GHz  %5d core(s)  %5.1f W  pcie=%v B/s\n",
			g.ID, g.Kind, g.FreqHz/1e9, g.Cores, g.PowerW, g.Transfer.BandwidthBps)
	}

	var tasks []mapping.Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks,
			mapping.Task{Name: fmt.Sprintf("filter%d", i), Cycles: 4e7, Bytes: 1 << 18, Speedup: 20},
			mapping.Task{Name: fmt.Sprintf("stencil%d", i), Cycles: 3e10, Bytes: 1 << 23, Speedup: 20, Parallelizable: true},
		)
	}

	perf, err := mapping.MapGreedyTime(tasks, targets)
	if err != nil {
		log.Fatal(err)
	}
	eco, err := mapping.MapGreedyEnergy(tasks, targets, perf.MakespanS*2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s\n%s\n", perf, eco)
	saved := (perf.EnergyJ - eco.EnergyJ) / perf.EnergyJ * 100
	fmt.Printf("energy-aware mapping saves %.1f%% energy within a 2x deadline\n\n", saved)

	names := make([]string, 0, len(perf.Placement))
	for n := range perf.Placement {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-12s %-10s %-10s\n", "task", "perf", "energy")
	for _, n := range names {
		fmt.Printf("%-12s %-10s %-10s\n", n, perf.Placement[n], eco.Placement[n])
	}
}
