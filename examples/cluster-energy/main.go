// Cluster energy accounting: compose the paper's XScluster model
// (Listing 11), synthesize the hierarchical static power breakdown
// (Section III-D), attribute the motherboard residual of an external
// wall measurement to each node, and estimate the energy of an
// inter-node transfer over the InfiniBand ring using the interconnect
// cost model (Listing 3 style).
//
// Run from the repository root:
//
//	go run ./examples/cluster-energy
package main

import (
	"flag"
	"fmt"
	"log"

	"xpdl"
	"xpdl/internal/energy"
	"xpdl/internal/resolve"
)

func main() {
	models := flag.String("models", "models", "model repository directory")
	flag.Parse()

	tc, err := xpdl.NewToolchain(xpdl.Options{SearchPaths: []string{*models}})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tc.Process("XScluster")
	if err != nil {
		log.Fatal(err)
	}
	sys := res.System
	fmt.Printf("XScluster composed: %d components, %d nodes\n",
		res.Stats.Components, sys.CountKind("node"))

	// Hierarchical static power: per-node and cluster totals synthesized
	// from the component attributes.
	b := energy.StaticBreakdown(sys)
	fmt.Printf("modeled static power (cluster): %.1f W\n", b.TotalW)
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("n%d", i)
		if nb := b.Find(id); nb != nil {
			fmt.Printf("  %s: %.1f W\n", id, nb.TotalW)
		}
	}

	// Motherboard residual: suppose the external power meter reads 120 W
	// per idle node; the unmodeled share is associated with the node
	// (Section III-A).
	n0 := resolve.FindByPath(sys, "n0")
	if n0 == nil {
		log.Fatal("n0 not found")
	}
	residual := energy.AttributeResidual(n0, 120)
	fmt.Printf("n0 residual (motherboard & friends) at 120 W measured: %.1f W\n", residual)

	// Transfer cost over one InfiniBand hop: 64 MiB in 1 MiB messages.
	conn := sys.FindByID("conn3")
	if conn == nil {
		log.Fatal("conn3 not found")
	}
	ch := conn.FirstChildKind("channel")
	if ch == nil {
		ch = conn
	}
	tcost := energy.ChannelCost(ch)
	bytes := int64(64 << 20)
	msgs := int64(64)
	tt, te := tcost.Cost(bytes, msgs)
	fmt.Printf("64 MiB over %s: %.3g s, %.3g J\n", conn.Ident(), tt, te)

	// PCIe hop inside a node for comparison.
	pcie := resolve.FindByPath(sys, "n0/conn1")
	if pcie != nil {
		if up := pcie.FirstChildKind("channel"); up != nil {
			tt2, te2 := energy.ChannelCost(up).Cost(bytes, msgs)
			fmt.Printf("64 MiB over n0/conn1 (%s): %.3g s, %.3g J\n", up.Name, tt2, te2)
		}
	}
}
