// Quickstart: compose the paper's LiU GPU server model (Listings 7–10),
// run the deployment-time microbenchmarks, emit the runtime model file
// and introspect it through the query API — the full Section IV
// pipeline in one program.
//
// Run from the repository root:
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"xpdl"
)

func main() {
	models := flag.String("models", "models", "model repository directory")
	flag.Parse()

	// 1. Process the concrete system model: browse the repository,
	//    resolve inheritance/params/groups, check constraints, run the
	//    microbenchmarks, analyze, and build the runtime structure.
	tc, err := xpdl.NewToolchain(xpdl.Options{
		SearchPaths:        []string{*models},
		RunMicrobenchmarks: true,
		Seed:               42,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tc.Process("liu_gpu_server")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composed liu_gpu_server: %d components\n", res.Stats.Components)
	if res.Microbench != nil {
		fmt.Print(res.Microbench)
	}

	// 2. Emit the light-weight runtime model file.
	dir, err := os.MkdirTemp("", "xpdl-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	rtFile := filepath.Join(dir, "liu_gpu_server.xrt")
	if err := tc.EmitRuntime(res, rtFile); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(rtFile)
	fmt.Printf("runtime model: %s (%d bytes)\n", rtFile, info.Size())

	// 3. Application startup: load the runtime model and introspect the
	//    platform (the xpdl_init / query API path).
	s, err := xpdl.OpenRuntime(rtFile)
	if err != nil {
		log.Fatal(err)
	}
	root := s.Root()
	fmt.Printf("cores:            %d\n", root.NumCores())
	fmt.Printf("CUDA devices:     %d\n", root.NumCUDADevices())
	fmt.Printf("static power:     %s\n", root.TotalStaticPower())
	fmt.Printf("installed:        %v\n", s.InstalledList())
	if gpu, ok := s.Find("gpu1"); ok {
		cc, _ := gpu.GetFloat("compute_capability")
		fmt.Printf("gpu1 compute capability: %.1f (type %s)\n", cc, gpu.TypeName())
	}
	if l3, ok := s.Find("L3"); ok {
		size, _ := l3.GetQuantity("size")
		fmt.Printf("L3 cache:         %s\n", size)
	}
}
