// Conditional composition (the paper's Section II case study): a sparse
// matrix-vector multiply component with CPU and GPU implementation
// variants, each constrained on library availability and nonzero
// density through the platform model. The dispatcher introspects the
// runtime model via the query API and picks the cheapest selectable
// variant per call — improving on any fixed choice across the density
// sweep.
//
// Run from the repository root:
//
//	go run ./examples/conditional-composition
package main

import (
	"flag"
	"fmt"
	"log"

	"xpdl"
	"xpdl/internal/composition"
	"xpdl/internal/query"
)

func main() {
	models := flag.String("models", "models", "model repository directory")
	n := flag.Int("n", 2048, "matrix dimension")
	flag.Parse()

	tc, err := xpdl.NewToolchain(xpdl.Options{SearchPaths: []string{*models}})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tc.Process("liu_gpu_server")
	if err != nil {
		log.Fatal(err)
	}
	s := query.NewSession(res.Runtime)
	fmt.Printf("platform: %d cores, %d CUDA device(s), CUBLAS installed: %v\n",
		s.Root().NumCores(), s.Root().NumCUDADevices(), s.Installed("CUBLAS"))

	comp := composition.SpMVComponent(s)
	x := make([]float64, *n)
	for i := range x {
		x[i] = 1
	}

	fmt.Printf("\n%-10s %-16s %12s %12s %12s\n", "density", "selected", "adaptive(s)", "cpu-csr(s)", "gpu(s)")
	for _, density := range []float64{0.0001, 0.0005, 0.002, 0.01, 0.05, 0.2} {
		m := composition.RandomMatrix(*n, density, 7)
		ctx := composition.NewSpMVContext(s, m, x)

		adaptive, v, err := comp.Call(ctx)
		if err != nil {
			log.Fatal(err)
		}
		cpu, err := comp.Variant("cpu-csr").Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		gpuStr := "n/a"
		if gv := comp.Variant("gpu-cusparse"); gv != nil {
			if g, err := gv.Run(ctx); err == nil {
				gpuStr = fmt.Sprintf("%12.3g", g.TimeS)
			}
		}
		fmt.Printf("%-10g %-16s %12.3g %12.3g %12s\n",
			density, v.Name, adaptive.TimeS, cpu.TimeS, gpuStr)
		composition.ReleaseSpMVContext(ctx)
	}
	fmt.Println("\nThe adaptive dispatcher matches the best variant at every density;")
	fmt.Println("the crossover from cpu-csr to gpu-cusparse reproduces the case study's shape.")
}
