// Myriad power management: compose the Myriad server model (Listings
// 4–6), drive the Myriad1 power domains through a legal switch-off
// sequence (Listing 12: CMX may only power down after all SHAVE islands
// are off), and use the power state machine (Listing 13 style) to pick
// the energy-optimal DVFS schedule for a deadline-constrained workload,
// comparing against race-to-idle and always-max baselines.
//
// Run from the repository root:
//
//	go run ./examples/myriad-power
package main

import (
	"flag"
	"fmt"
	"log"

	"xpdl"
	"xpdl/internal/model"
	"xpdl/internal/power"
)

func main() {
	models := flag.String("models", "models", "model repository directory")
	flag.Parse()

	tc, err := xpdl.NewToolchain(xpdl.Options{SearchPaths: []string{*models}})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tc.Process("myriad_server")
	if err != nil {
		log.Fatal(err)
	}
	sys := res.System

	// Locate the Myriad1's power domains and PSM in the composed tree.
	var pdComp, psmComp *model.Component
	sys.Walk(func(c *model.Component) bool {
		switch c.Kind {
		case "power_domains":
			pdComp = c
		case "power_state_machine":
			psmComp = c
		}
		return true
	})
	if pdComp == nil || psmComp == nil {
		log.Fatal("power model not found in composed tree")
	}

	ds, err := power.DomainsFromComponent(pdComp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Myriad1 power domains: %d (group Shave_pds has %d members)\n",
		len(ds.Domains), len(ds.Groups["Shave_pds"]))

	st := power.NewDomainState(ds)
	if err := st.SwitchOff("CMX_pd"); err != nil {
		fmt.Println("as specified, CMX refuses to power down first:", err)
	}
	for _, name := range ds.Groups["Shave_pds"] {
		if err := st.SwitchOff(name); err != nil {
			log.Fatal(err)
		}
	}
	if err := st.SwitchOff("CMX_pd"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after shutting down SHAVEs then CMX, %d domain(s) remain on: %v\n",
		st.OnCount(), st.OnDomains())

	// DVFS optimization on the SHAVE power state machine.
	sm, err := power.StateMachineFromComponent(psmComp)
	if err != nil {
		log.Fatal(err)
	}
	if err := sm.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPSM %s for domain %s: %d states, %d transitions\n",
		sm.Name, sm.Domain, len(sm.States), len(sm.Transitions()))

	w := power.Workload{Cycles: 45e6, DeadlineS: 0.5}
	from := sm.States[0].Name
	for _, plan := range plans(sm, from, w) {
		fmt.Println(" ", plan)
	}
}

func plans(sm *power.StateMachine, from string, w power.Workload) []power.Plan {
	var out []power.Plan
	if p, err := sm.Optimize(from, w); err == nil {
		out = append(out, p)
	}
	if p, err := sm.RaceToIdle(from, w); err == nil {
		out = append(out, p)
	}
	if p, err := sm.AlwaysMax(from, w); err == nil {
		out = append(out, p)
	}
	return out
}
