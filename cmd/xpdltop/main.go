// Command xpdltop is a terminal top(1) for a running xpdld: it polls
// GET /v1/stats/queries and renders the per-digest statement
// statistics as a live table — one row per query class (endpoint +
// model + literal-stripped plan shape + wire protocol) with its
// request rate, windowed latency percentiles, error share and bytes
// moved.
//
// Rates and percentiles are computed over the poll window, not over
// the daemon's lifetime: each refresh diffs the cumulative per-bucket
// latency counts against the previous poll and interpolates p50/p99
// from the delta histogram, so the display answers "what is slow right
// now", the way pg_stat_statements plus a watch loop would.
//
// Usage:
//
//	xpdltop -addr http://localhost:8360 -interval 2s -sort rps
//
// -once prints a single snapshot (cumulative, since the daemon
// started) and exits — the scriptable mode. -model filters to one
// model; -n bounds the rows shown.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"xpdl/internal/obs"
	"xpdl/internal/serve"
)

// row is one digest with its window-derived view.
type row struct {
	serve.QueryStatRow
	rps      float64 // calls per second over the window
	winP50   float64 // seconds, from the window's delta histogram
	winP99   float64
	winCalls int64
}

// digestKey identifies a digest across polls.
func digestKey(r *serve.QueryStatRow) string {
	return r.Endpoint + "\x00" + r.Model + "\x00" + r.Shape + "\x00" + r.Proto
}

// sortKeys orders rows; every ordering is busiest-first.
var sortKeys = map[string]func(a, b *row) bool{
	"rps":    func(a, b *row) bool { return a.rps > b.rps },
	"calls":  func(a, b *row) bool { return a.Calls > b.Calls },
	"p50":    func(a, b *row) bool { return a.winP50 > b.winP50 },
	"p99":    func(a, b *row) bool { return a.winP99 > b.winP99 },
	"bytes":  func(a, b *row) bool { return a.ReqBytes+a.RespBytes > b.ReqBytes+b.RespBytes },
	"errors": func(a, b *row) bool { return a.Errors > b.Errors },
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8360", "base URL of the xpdld instance")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		sortKey  = flag.String("sort", "rps", "row order: rps, calls, p50, p99, bytes or errors")
		model    = flag.String("model", "", "only show digests of this model")
		topN     = flag.Int("n", 20, "rows shown (0 = all)")
		once     = flag.Bool("once", false, "print one snapshot (cumulative) and exit")
		useBin   = flag.Bool("bin", false, "poll over the binary wire protocol")
	)
	flag.Parse()
	if _, ok := sortKeys[*sortKey]; !ok {
		fmt.Fprintf(os.Stderr, "xpdltop: unknown -sort %q\n", *sortKey)
		os.Exit(2)
	}
	if *interval <= 0 {
		fmt.Fprintln(os.Stderr, "xpdltop: -interval must be positive")
		os.Exit(2)
	}
	c := serve.NewClient(strings.TrimRight(*addr, "/"))
	if *useBin {
		c.Proto = serve.ProtoBinary
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	prev := map[string]serve.QueryStatRow{}
	prevAt := time.Time{}
	first := true
	for {
		stats, err := c.QueryStats(ctx, "calls", 0, *model)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fmt.Fprintf(os.Stderr, "xpdltop: %v\n", err)
			os.Exit(1)
		}
		now := time.Now()
		window := now.Sub(prevAt)
		rows := make([]*row, 0, len(stats.Rows))
		next := make(map[string]serve.QueryStatRow, len(stats.Rows))
		for i := range stats.Rows {
			sr := stats.Rows[i]
			next[digestKey(&sr)] = sr
			r := &row{QueryStatRow: sr}
			if old, ok := prev[digestKey(&sr)]; ok && !first {
				r.winCalls = sr.Calls - old.Calls
				if window > 0 {
					r.rps = float64(r.winCalls) / window.Seconds()
				}
				delta := deltaCounts(sr.BucketCounts, old.BucketCounts)
				r.winP50 = obs.BucketQuantile(stats.BucketBounds, delta, 0.50)
				r.winP99 = obs.BucketQuantile(stats.BucketBounds, delta, 0.99)
			} else {
				// First sighting (or -once): the cumulative view is the
				// best available window.
				r.winCalls = sr.Calls
				r.winP50, r.winP99 = sr.P50S, sr.P99S
				if !first && window > 0 {
					r.rps = float64(sr.Calls) / window.Seconds()
				}
			}
			rows = append(rows, r)
		}
		prev, prevAt = next, now

		if *once {
			render(stats, rows, *sortKey, *topN, false)
			return
		}
		if !first {
			render(stats, rows, *sortKey, *topN, true)
		}
		first = false
		select {
		case <-ctx.Done():
			fmt.Println()
			return
		case <-time.After(*interval):
		}
	}
}

// deltaCounts subtracts two cumulative bucket-count snapshots; counter
// resets (a digest evicted and re-inserted) clamp to the new value.
func deltaCounts(cur, old []int64) []int64 {
	out := make([]int64, len(cur))
	for i, c := range cur {
		if i < len(old) && c >= old[i] {
			out[i] = c - old[i]
		} else {
			out[i] = c
		}
	}
	return out
}

func render(stats serve.QueryStatsResponse, rows []*row, sortKey string, topN int, clear bool) {
	less := sortKeys[sortKey]
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if less(a, b) != less(b, a) {
			return less(a, b)
		}
		return digestKey(&a.QueryStatRow) < digestKey(&b.QueryStatRow)
	})
	shown := rows
	if topN > 0 && len(shown) > topN {
		shown = shown[:topN]
	}
	var out strings.Builder
	if clear {
		out.WriteString("\x1b[2J\x1b[H")
	}
	fmt.Fprintf(&out, "xpdltop  %s  digests %d  recorded %d  evicted %d  slow-ring %d  sort %s\n",
		time.Now().Format("15:04:05"), stats.Digests, stats.Recorded, stats.Evicted, len(stats.Slow), sortKey)
	fmt.Fprintf(&out, "%-12s %-5s %-18s %-26s %8s %8s %9s %9s %6s %10s\n",
		"ENDPOINT", "PROTO", "MODEL", "SHAPE", "CALLS", "REQ/S", "P50", "P99", "ERR%", "BYTES")
	for _, r := range shown {
		errPct := 0.0
		if r.Calls > 0 {
			errPct = 100 * float64(r.Errors) / float64(r.Calls)
		}
		fmt.Fprintf(&out, "%-12s %-5s %-18s %-26s %8d %8.1f %9s %9s %6.1f %10s\n",
			trunc(r.Endpoint, 12), r.Proto, trunc(r.Model, 18), trunc(r.Shape, 26),
			r.Calls, r.rps, fmtDur(r.winP50), fmtDur(r.winP99), errPct,
			fmtBytes(r.ReqBytes+r.RespBytes))
	}
	if n := len(stats.Slow); n > 0 {
		s := stats.Slow[0]
		fmt.Fprintf(&out, "slowest: %.2fms %s %s", s.LatencyMS, s.Endpoint, s.Shape)
		if s.TraceID != "" {
			fmt.Fprintf(&out, " (trace %s)", s.TraceID)
		}
		out.WriteByte('\n')
	}
	os.Stdout.WriteString(out.String())
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}

func fmtDur(seconds float64) string {
	switch {
	case seconds <= 0:
		return "-"
	case seconds < 1e-3:
		return fmt.Sprintf("%.0fµs", seconds*1e6)
	case seconds < 1:
		return fmt.Sprintf("%.2fms", seconds*1e3)
	default:
		return fmt.Sprintf("%.2fs", seconds)
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
