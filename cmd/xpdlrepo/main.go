// Command xpdlrepo serves a directory of XPDL descriptors over HTTP —
// the "manufacturer web site" half of the distributed model repository
// (Section III): remote model libraries from which xpdltool fetches
// submodels it cannot find on the local search path.
//
// Descriptors are served as /<ident>.xpdl where ident is the name/id of
// the descriptor's root element (not the file name), matching the
// repository's fetch convention. Responses carry ETag/Last-Modified
// and honor conditional requests with 304, so clients running a
// descriptor cache revalidate instead of re-downloading. /index lists
// all identifiers; /index?stats=1 appends request counters.
//
// The handler lives in internal/repo/server so its routing and
// conditional-request behavior are covered by httptest tests.
//
// Usage:
//
//	xpdlrepo -dir models -addr :8344
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xpdl/internal/obs"
	"xpdl/internal/repo/server"
)

func main() {
	dir := flag.String("dir", "models", "directory of .xpdl descriptors to serve")
	addr := flag.String("addr", ":8344", "listen address")
	obsAddr := flag.String("obs-addr", "", "additionally serve /metrics, /debug/pprof and /debug/vars on this address (they are always available on -addr too)")
	logLevel := flag.String("log-level", "info", "structured access-log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "structured access-log format: text or json")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal("xpdlrepo: ", err)
	}
	srv, err := server.New(*dir)
	if err != nil {
		log.Fatal("xpdlrepo: ", err)
	}
	// Structured access logs: one record per descriptor/index request,
	// stamped with the caller's trace ID when a traceparent arrives.
	srv.AccessLog = obs.NewLogger(os.Stderr, level, *logFormat)
	obs.RegisterRuntimeMetrics(obs.Default())
	if *obsAddr != "" {
		bound, _, err := obs.Serve(*obsAddr, srv.Registry(), obs.Default())
		if err != nil {
			log.Fatal("xpdlrepo: ", err)
		}
		log.Printf("xpdlrepo: observability endpoints on http://%s", bound)
	}
	log.Printf("xpdlrepo: serving %d descriptors from %s on %s (metrics on /metrics, profiles on /debug/pprof/)", srv.Len(), *dir, *addr)

	// Descriptors are small static documents: tight read/write timeouts
	// shed slow-loris clients without risking legitimate transfers.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatal("xpdlrepo: ", err)
	case <-ctx.Done():
	}
	log.Print("xpdlrepo: shutting down (draining connections)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Print("xpdlrepo: shutdown: ", err)
	}
	log.Print("xpdlrepo: bye")
}
