// Command xpdlrepo serves a directory of XPDL descriptors over HTTP —
// the "manufacturer web site" half of the distributed model repository
// (Section III): remote model libraries from which xpdltool fetches
// submodels it cannot find on the local search path.
//
// Descriptors are served as /<ident>.xpdl where ident is the name/id of
// the descriptor's root element (not the file name), matching the
// repository's fetch convention. Responses carry ETag/Last-Modified
// and honor conditional requests with 304, so clients running a
// descriptor cache revalidate instead of re-downloading. /index lists
// all identifiers; /index?stats=1 appends request counters.
//
// The handler lives in internal/repo/server so its routing and
// conditional-request behavior are covered by httptest tests.
//
// Usage:
//
//	xpdlrepo -dir models -addr :8344
package main

import (
	"flag"
	"log"
	"net/http"

	"xpdl/internal/obs"
	"xpdl/internal/repo/server"
)

func main() {
	dir := flag.String("dir", "models", "directory of .xpdl descriptors to serve")
	addr := flag.String("addr", ":8344", "listen address")
	obsAddr := flag.String("obs-addr", "", "additionally serve /metrics, /debug/pprof and /debug/vars on this address (they are always available on -addr too)")
	flag.Parse()

	srv, err := server.New(*dir)
	if err != nil {
		log.Fatal("xpdlrepo: ", err)
	}
	if *obsAddr != "" {
		bound, _, err := obs.Serve(*obsAddr, srv.Registry(), obs.Default())
		if err != nil {
			log.Fatal("xpdlrepo: ", err)
		}
		log.Printf("xpdlrepo: observability endpoints on http://%s", bound)
	}
	log.Printf("xpdlrepo: serving %d descriptors from %s on %s (metrics on /metrics, profiles on /debug/pprof/)", srv.Len(), *dir, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
