// Command xpdlrepo serves a directory of XPDL descriptors over HTTP —
// the "manufacturer web site" half of the distributed model repository
// (Section III): remote model libraries from which xpdltool fetches
// submodels it cannot find on the local search path.
//
// Descriptors are served as /<ident>.xpdl where ident is the name/id of
// the descriptor's root element (not the file name), matching the
// repository's fetch convention. /index lists all identifiers.
//
// Usage:
//
//	xpdlrepo -dir models -addr :8344
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"xpdl/internal/ast"
)

func main() {
	dir := flag.String("dir", "models", "directory of .xpdl descriptors to serve")
	addr := flag.String("addr", ":8344", "listen address")
	flag.Parse()

	idx, err := index(*dir)
	if err != nil {
		log.Fatal("xpdlrepo: ", err)
	}
	log.Printf("xpdlrepo: serving %d descriptors from %s on %s", len(idx.byIdent), *dir, *addr)
	log.Fatal(http.ListenAndServe(*addr, idx))
}

// repoIndex maps descriptor identifiers to files, serving them over
// HTTP.
type repoIndex struct {
	mu      sync.RWMutex
	byIdent map[string]string
}

func index(dir string) (*repoIndex, error) {
	idx := &repoIndex{byIdent: map[string]string{}}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".xpdl") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		root, err := ast.Parse(path, src)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		ident := root.AttrDefault("id", root.AttrDefault("name", ""))
		if ident == "" {
			return fmt.Errorf("%s: root element has neither name= nor id=", path)
		}
		if prev, dup := idx.byIdent[ident]; dup {
			return fmt.Errorf("identifier %q in both %s and %s", ident, prev, path)
		}
		idx.byIdent[ident] = path
		return nil
	})
	return idx, err
}

func (idx *repoIndex) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	if r.URL.Path == "/index" || r.URL.Path == "/" {
		for ident := range idx.byIdent {
			fmt.Fprintln(w, ident)
		}
		return
	}
	ident := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/"), ".xpdl")
	path, ok := idx.byIdent[ident]
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	http.ServeFile(w, r, path)
}
