// Command xpdlvalidate checks XPDL descriptor files against the core
// metamodel and reports diagnostics with source positions. It exits
// nonzero if any file has errors.
//
// Usage:
//
//	xpdlvalidate file.xpdl [file2.xpdl ...]
//	xpdlvalidate -dir models
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"xpdl/internal/ast"
	"xpdl/internal/schema"
)

func main() {
	dir := flag.String("dir", "", "validate every .xpdl file under this directory")
	quiet := flag.Bool("q", false, "suppress per-file OK lines")
	flag.Parse()

	var files []string
	if *dir != "" {
		err := filepath.Walk(*dir, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if !info.IsDir() && strings.HasSuffix(path, ".xpdl") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpdlvalidate:", err)
			os.Exit(1)
		}
	}
	files = append(files, flag.Args()...)
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "xpdlvalidate: no input files (use -dir or list files)")
		os.Exit(2)
	}

	s := schema.Core()
	bad := 0
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpdlvalidate:", err)
			bad++
			continue
		}
		root, err := ast.Parse(f, src)
		if err != nil {
			fmt.Println(err)
			bad++
			continue
		}
		diags := s.Validate(root)
		for _, d := range diags {
			fmt.Println(d.Error())
		}
		if diags.HasErrors() {
			bad++
		} else if !*quiet {
			fmt.Printf("%s: OK (%d elements)\n", f, root.CountElements())
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "xpdlvalidate: %d of %d file(s) failed\n", bad, len(files))
		os.Exit(1)
	}
}
