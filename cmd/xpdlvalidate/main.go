// Command xpdlvalidate checks XPDL descriptor files against the core
// metamodel and reports diagnostics with source positions. It exits
// nonzero if any file has errors.
//
// Usage:
//
//	xpdlvalidate file.xpdl [file2.xpdl ...]
//	xpdlvalidate -dir models
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"xpdl/internal/ast"
	"xpdl/internal/obs"
	"xpdl/internal/schema"
)

func main() {
	dir := flag.String("dir", "", "validate every .xpdl file under this directory")
	quiet := flag.Bool("q", false, "suppress per-file OK lines")
	trace := flag.Bool("trace", false, "print a per-file parse/validate span tree (wall time + allocations)")
	flag.Parse()

	var files []string
	if *dir != "" {
		err := filepath.Walk(*dir, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if !info.IsDir() && strings.HasSuffix(path, ".xpdl") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpdlvalidate:", err)
			os.Exit(1)
		}
	}
	files = append(files, flag.Args()...)
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "xpdlvalidate: no input files (use -dir or list files)")
		os.Exit(2)
	}

	// A nil root span keeps validation on the no-op path unless -trace.
	var span *obs.Span
	if *trace {
		span = obs.NewSpan("xpdlvalidate")
	}
	s := schema.Core()
	bad := 0
	for _, f := range files {
		fsp := span.Start(filepath.Base(f))
		src, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpdlvalidate:", err)
			bad++
			fsp.Stop()
			continue
		}
		psp := fsp.Start("parse")
		root, err := ast.Parse(f, src)
		psp.Stop()
		if err != nil {
			fmt.Println(err)
			bad++
			fsp.Stop()
			continue
		}
		vsp := fsp.Start("validate")
		diags := s.Validate(root)
		vsp.Stop()
		fsp.SetAttr("elements", fmt.Sprint(root.CountElements()))
		fsp.Stop()
		for _, d := range diags {
			fmt.Println(d.Error())
		}
		if diags.HasErrors() {
			bad++
		} else if !*quiet {
			fmt.Printf("%s: OK (%d elements)\n", f, root.CountElements())
		}
	}
	span.Stop()
	if *trace {
		fmt.Print("\ntrace:\n" + span.Text())
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "xpdlvalidate: %d of %d file(s) failed\n", bad, len(files))
		os.Exit(1)
	}
}
