// Command xpdlsweep runs scenario sweeps: it binds grids of model
// parameter values, evaluates a vector of objectives (static power,
// task energy/time, transfer cost, arbitrary expressions) at every
// legal point, and reports the Pareto front over the results — the
// design-space exploration workflow the XPDL paper motivates (compare
// shared-memory/L1 splits, frequency settings, replication counts)
// driven from one JSON spec.
//
// The sweep spec is a JSON document (see the README's "Scenario
// sweeps" section):
//
//	{
//	  "params": [
//	    {"name": "L1size",  "target": "gpu1", "unit": "KB", "values": ["16", "32", "48"]},
//	    {"name": "shmsize", "target": "gpu1", "unit": "KB", "values": ["16", "32", "48"]}
//	  ],
//	  "objectives": [
//	    {"name": "static_w", "kind": "static_power"},
//	    {"name": "shm", "expr": "shmsize", "sense": "max"}
//	  ]
//	}
//
// Local mode resolves every point in-process against a descriptor
// repository:
//
//	xpdlsweep -models models -spec sweep.json liu_gpu_server
//
// With -remote, the sweep is submitted to a running xpdld as an async
// job; progress events stream back per point and the command waits for
// the terminal state:
//
//	xpdlsweep -remote http://localhost:8360 -spec sweep.json liu_gpu_server
//
// Either way the output is the same: a summary line, the Pareto front
// as a table (or the full result as JSON with -json). Point sets and
// fronts are deterministic — identical across runs, worker counts, and
// local vs remote execution.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"

	"xpdl/internal/repo"
	"xpdl/internal/scenario"
	"xpdl/internal/serve"
)

func main() {
	var (
		models   = flag.String("models", "models", "comma-separated local model repository directories")
		remote   = flag.String("remote", "", "base URL of a running xpdld; the sweep runs there as an async job")
		specPath = flag.String("spec", "", `sweep spec JSON file ("-" = stdin)`)
		workers  = flag.Int("workers", 0, "local mode: concurrent point evaluations (0 = GOMAXPROCS)")
		full     = flag.Bool("full-resolve", false, "force the full composition pipeline per point (disable the re-bind fast path)")
		jsonOut  = flag.Bool("json", false, "print the full result as JSON instead of the front table")
		points   = flag.Bool("points", false, "with -json: include every point, not just the front")
		quiet    = flag.Bool("quiet", false, "suppress per-point progress on stderr")
	)
	flag.Parse()
	if flag.NArg() != 1 || *specPath == "" {
		fmt.Fprintln(os.Stderr, "xpdlsweep: usage: xpdlsweep -spec sweep.json [-models dirs | -remote http://host:port] <system-model>")
		os.Exit(2)
	}
	system := flag.Arg(0)

	spec, err := readSpec(*specPath)
	if err != nil {
		fail(err)
	}
	if *full {
		spec.FullResolve = true
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var res *scenario.Result
	if *remote != "" {
		res, err = runRemote(ctx, *remote, system, spec, *quiet)
	} else {
		res, err = runLocal(ctx, *models, system, spec, *workers, *quiet)
	}
	if err != nil {
		fail(err)
	}
	if err := report(os.Stdout, res, *jsonOut, *points); err != nil {
		fail(err)
	}
}

func readSpec(path string) (*scenario.Spec, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec scenario.Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("spec %s: %w", path, err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

func runLocal(ctx context.Context, models, system string, spec *scenario.Spec, workers int, quiet bool) (*scenario.Result, error) {
	rp, err := repo.New(splitList(models)...)
	if err != nil {
		return nil, err
	}
	eng := &scenario.Engine{Repo: rp, Workers: workers}
	if !quiet {
		eng.OnPoint = progress(os.Stderr)
	}
	return eng.Run(ctx, system, spec)
}

func runRemote(ctx context.Context, base, system string, spec *scenario.Spec, quiet bool) (*scenario.Result, error) {
	c := serve.NewClient(base)
	acc, err := c.Sweep(ctx, system, *spec)
	if err != nil {
		return nil, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "xpdlsweep: job %s accepted (%d points)\n", acc.Job, acc.Total)
	}
	onPoint := progress(os.Stderr)
	// Stream progress until the terminal event, resuming from the last
	// seen sequence number if the stream drops.
	var since uint64
	for {
		terminal := false
		err := c.JobStream(ctx, acc.Job, since, func(ev serve.JobEvent) error {
			since = ev.Seq
			if ev.Type == "point" && ev.Point != nil {
				if !quiet {
					onPoint(*ev.Point)
				}
				return nil
			}
			terminal = true
			return nil
		})
		if err != nil {
			return nil, err
		}
		if terminal {
			break
		}
	}
	info, err := c.JobStatus(ctx, acc.Job, true)
	if err != nil {
		return nil, err
	}
	switch info.State {
	case serve.JobStateDone:
		return info.Result, nil
	case serve.JobStateCanceled:
		return nil, fmt.Errorf("job %s canceled", acc.Job)
	default:
		return nil, fmt.Errorf("job %s %s: %s", acc.Job, info.State, info.Error)
	}
}

// progress returns a serialized-by-caller per-point reporter. Points
// arrive in completion order; the final tables are grid-ordered.
func progress(w io.Writer) func(scenario.PointResult) {
	return func(p scenario.PointResult) {
		switch {
		case p.Skipped:
			fmt.Fprintf(w, "point %d skipped: %s\n", p.Index, p.Reason)
		case p.Failed:
			fmt.Fprintf(w, "point %d FAILED: %s\n", p.Index, p.Reason)
		default:
			fmt.Fprintf(w, "point %d ok %s\n", p.Index, paramString(p.Params))
		}
	}
}

func report(w io.Writer, res *scenario.Result, asJSON, withPoints bool) error {
	if asJSON {
		out := *res
		if !withPoints {
			front := res.FrontPoints()
			out.Points = front
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&out)
	}
	mode := "fast path"
	if !res.FastPath {
		mode = "full resolve"
	}
	fmt.Fprintf(w, "%s: %d points (%d evaluated, %d skipped, %d failed) via %s\n",
		res.System, res.Total, res.Evaluated, res.Skipped, res.Failed, mode)
	front := res.FrontPoints()
	if len(front) == 0 {
		fmt.Fprintln(w, "Pareto front: empty (no evaluated points)")
		return nil
	}
	fmt.Fprintf(w, "Pareto front (%d of %d evaluated):\n", len(front), res.Evaluated)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := []string{"index", "params"}
	for i, n := range res.ObjectiveNames {
		header = append(header, fmt.Sprintf("%s(%s)", n, res.Senses[i]))
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, p := range front {
		row := []string{fmt.Sprint(p.Index), paramString(p.Params)}
		for _, v := range p.Objectives {
			row = append(row, fmt.Sprintf("%g", v))
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// paramString renders a point's bindings deterministically.
func paramString(params map[string]string) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+params[k])
	}
	return strings.Join(parts, " ")
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xpdlsweep:", err)
	os.Exit(1)
}
