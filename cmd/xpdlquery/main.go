// Command xpdlquery loads a runtime model file written by xpdltool and
// answers introspection queries — the command-line face of the runtime
// query API (Section IV).
//
// The runtime model may also be fetched over HTTP(S) — useful when a
// deployment service publishes the composed model next to the
// descriptor library. The download uses the repository's retry/backoff
// policy so a flaky network does not fail the query:
//
//	xpdlquery -rt http://models.example.com/liu.xrt cores
//
// With -remote, the same commands are answered by a running xpdld
// daemon instead of a local runtime model; -rt then names the system
// model identifier. The output is byte-identical to the local path, so
// scripts can switch between the two transparently:
//
//	xpdlquery -remote http://localhost:8360 -rt liu_gpu_server cores
//
// Remote queries ride the daemon's binary protocol
// (application/x-xpdl-bin) by default — the answers are the same, the
// wire is cheaper. -proto json falls back to the JSON API, e.g. when
// talking to an older daemon.
//
// -watch streams the daemon's generation-change events for the model
// (one line per hot swap, noting whether it was a delta patch or a
// full resolve) until interrupted:
//
//	xpdlquery -remote http://localhost:8360 -rt liu_gpu_server -watch
//
// Usage:
//
//	xpdlquery -rt liu.xrt tree                # print the model tree
//	xpdlquery -rt liu.xrt cores               # derived core count
//	xpdlquery -rt liu.xrt cuda-devices        # CUDA device count
//	xpdlquery -rt liu.xrt static-power        # total static power (W)
//	xpdlquery -rt liu.xrt installed           # installed software list
//	xpdlquery -rt liu.xrt get gpu1 compute_capability
//	xpdlquery -rt liu.xrt eval "installed('CUBLAS') && num_cores() >= 4"
//	xpdlquery -rt liu.xrt select "//cache[name=L3]"
//	xpdlquery -rt liu.xrt json                # export the model as JSON
//	xpdlquery explain "//cache[name=L3]"      # show the compiled query plan
//
// explain needs no model: it compiles the selector and prints one line
// per segment with the strategy the executor uses (index lookups vs
// tree walks), so slow selectors can be diagnosed without a server.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"xpdl/internal/expr"
	"xpdl/internal/obs"
	"xpdl/internal/query"
	"xpdl/internal/repo"
	"xpdl/internal/serve"
	"xpdl/internal/units"
)

// selRow is one selector match: the fields both backends can print.
type selRow struct {
	Kind, Path string
}

// backend answers the query commands; the local implementation wraps
// an in-process query.Session, the remote one a running xpdld. Both
// must produce byte-identical command output.
type backend interface {
	Tree(w io.Writer) error
	Cores() (int, error)
	CUDADevices() (int, error)
	StaticPower() (units.Quantity, error)
	Installed() ([]string, error)
	// Get returns the printable value of one attribute: the quantity
	// rendering when the attribute has a normalized value, the raw
	// string otherwise.
	Get(ident, attr string) (string, error)
	JSON(w io.Writer) error
	Select(sel string) ([]selRow, error)
	// Eval returns the Go literal rendering of the expression value.
	Eval(src string) (string, error)
}

func main() {
	rt := flag.String("rt", "", "runtime model file (.xrt), http(s) URL, or — with -remote — a system model identifier")
	remote := flag.String("remote", "", "base URL of a running xpdld; queries are answered by the daemon")
	proto := flag.String("proto", "bin", `with -remote: wire protocol, "bin" (default) or "json"`)
	metrics := flag.Bool("metrics", false, "print the metrics registry (lookup/selector counters) after the command")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/pprof and /debug/vars on this address while running")
	trace := flag.Bool("trace", false, "with -remote: send a sampled traceparent so the daemon records the request; the trace ID is printed to stderr")
	watch := flag.Bool("watch", false, "with -remote: stream generation-change events for the model (one line per event) until interrupted")
	flag.Parse()
	// explain is model-free: it only compiles the selector.
	if flag.NArg() > 0 && flag.Arg(0) == "explain" {
		if flag.NArg() != 2 {
			fail(fmt.Errorf("explain needs one selector argument"))
		}
		p, err := query.Compile(flag.Arg(1))
		if err != nil {
			fail(err)
		}
		fmt.Print(p.Describe())
		return
	}
	if *rt == "" || (flag.NArg() == 0 && !*watch) {
		fmt.Fprintln(os.Stderr, "xpdlquery: usage: xpdlquery [-remote http://host:port] -rt model.xrt <tree|cores|cuda-devices|static-power|installed|get id attr|eval expr|select sel|explain sel|json>")
		fmt.Fprintln(os.Stderr, "xpdlquery:        xpdlquery -remote http://host:port -rt <model> -watch")
		os.Exit(2)
	}
	if *obsAddr != "" {
		addr, shutdown, err := obs.Serve(*obsAddr)
		if err != nil {
			fail(err)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "xpdlquery: observability endpoints on http://%s\n", addr)
	}
	if *metrics {
		defer func() {
			fmt.Fprintln(os.Stderr, "metrics:")
			_ = obs.Default().WritePrometheus(os.Stderr)
		}()
	}
	var b backend
	if *remote != "" {
		var clientProto serve.Proto
		switch *proto {
		case "bin":
			clientProto = serve.ProtoBinary
		case "json":
			clientProto = serve.ProtoJSON
		default:
			fail(fmt.Errorf("-proto must be bin or json (got %q)", *proto))
		}
		ctx := context.Background()
		if *trace {
			// A client-side trace forces the daemon to record the request
			// (the sampled flag on the propagated traceparent wins over
			// the server's own sampling), and /debug/traces/<id> then
			// holds the full span tree: client → handler → store load →
			// toolchain phases → repository fetches.
			tr := obs.StartTrace("xpdlquery", obs.TraceContext{
				TraceID: obs.NewTraceID(),
				SpanID:  obs.NewSpanID(),
				Sampled: true,
			}, obs.SpanID{})
			ctx = obs.ContextWithTrace(ctx, tr)
			fmt.Fprintf(os.Stderr, "xpdlquery: trace %s (fetch %s/debug/traces/%s)\n",
				tr.Context().TraceID, *remote, tr.Context().TraceID)
		}
		client := serve.NewClient(*remote)
		client.Proto = clientProto
		if *watch {
			if err := watchRemote(ctx, client, *rt); err != nil {
				fail(err)
			}
			return
		}
		b = &remoteBackend{
			ctx:    ctx,
			client: client,
			model:  *rt,
		}
	} else {
		if *watch {
			fail(fmt.Errorf("-watch requires -remote (events come from a running xpdld)"))
		}
		path, err := localize(*rt)
		if err != nil {
			fail(err)
		}
		s, err := query.Init(path)
		if err != nil {
			fail(err)
		}
		b = &localBackend{s: s}
	}
	if err := run(b, os.Stdout, flag.Args()); err != nil {
		fail(err)
	}
}

// watchRemote streams generation-change events for one model from a
// running xpdld, one line per event, until the stream ends or the
// process is interrupted.
func watchRemote(ctx context.Context, client *serve.Client, model string) error {
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := client.Watch(ctx, model, 0, func(ev serve.WatchEvent) error {
		how := "full"
		if ev.Delta {
			how = "delta"
		}
		line := fmt.Sprintf("%s seq=%d gen=%d via=%s fingerprint=%s",
			ev.Model, ev.Seq, ev.Generation, how, ev.Fingerprint)
		if len(ev.Changed) > 0 {
			line += " changed=" + strings.Join(ev.Changed, ",")
		}
		fmt.Println(line)
		return nil
	})
	if ctx.Err() != nil {
		return nil // interrupted: clean exit
	}
	return err
}

// run dispatches one command against a backend, writing to w.
func run(b backend, w io.Writer, args []string) error {
	switch cmd := args[0]; cmd {
	case "tree":
		return b.Tree(w)
	case "cores":
		n, err := b.Cores()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, n)
	case "cuda-devices":
		n, err := b.CUDADevices()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, n)
	case "static-power":
		q, err := b.StaticPower()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, q)
	case "installed":
		pkgs, err := b.Installed()
		if err != nil {
			return err
		}
		for _, pkg := range pkgs {
			fmt.Fprintln(w, pkg)
		}
	case "get":
		if len(args) != 3 {
			return fmt.Errorf("get needs <ident> <attr>")
		}
		v, err := b.Get(args[1], args[2])
		if err != nil {
			return err
		}
		fmt.Fprintln(w, v)
	case "json":
		return b.JSON(w)
	case "select":
		if len(args) != 2 {
			return fmt.Errorf("select needs one selector argument")
		}
		rows, err := b.Select(args[1])
		if err != nil {
			return err
		}
		for _, row := range rows {
			fmt.Fprintf(w, "%s\t%s\n", row.Kind, row.Path)
		}
	case "eval":
		text, err := b.Eval(strings.Join(args[1:], " "))
		if err != nil {
			return err
		}
		fmt.Fprintln(w, text)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// ---- local backend: in-process query session ----

type localBackend struct {
	s *query.Session
}

func (l *localBackend) Tree(w io.Writer) error         { return serve.WriteTree(w, l.s.Root()) }
func (l *localBackend) Cores() (int, error)            { return l.s.Root().NumCores(), nil }
func (l *localBackend) CUDADevices() (int, error)      { return l.s.Root().NumCUDADevices(), nil }
func (l *localBackend) Installed() ([]string, error)   { return l.s.InstalledList(), nil }
func (l *localBackend) JSON(w io.Writer) error         { return l.s.Model().WriteJSON(w) }
func (l *localBackend) StaticPower() (units.Quantity, error) {
	return l.s.Root().TotalStaticPower(), nil
}

func (l *localBackend) Get(ident, attr string) (string, error) {
	e, ok := l.s.Find(ident)
	if !ok {
		return "", fmt.Errorf("element %q not found", ident)
	}
	if q, ok := e.GetQuantity(attr); ok {
		return q.String(), nil
	}
	if v, ok := e.GetString(attr); ok {
		return v, nil
	}
	return "", fmt.Errorf("element %q has no attribute %q", ident, attr)
}

func (l *localBackend) Select(sel string) ([]selRow, error) {
	elems, err := l.s.Select(sel)
	if err != nil {
		return nil, err
	}
	rows := make([]selRow, 0, len(elems))
	for _, e := range elems {
		rows = append(rows, selRow{Kind: e.Kind(), Path: e.Path()})
	}
	return rows, nil
}

func (l *localBackend) Eval(src string) (string, error) {
	v, err := expr.Eval(src, l.s.Env(nil))
	if err != nil {
		return "", err
	}
	return v.GoString(), nil
}

// ---- remote backend: a running xpdld ----

type remoteBackend struct {
	ctx    context.Context
	client *serve.Client
	model  string
}

func (r *remoteBackend) Tree(w io.Writer) error { return r.client.Tree(r.ctx, r.model, w) }
func (r *remoteBackend) JSON(w io.Writer) error { return r.client.JSON(r.ctx, r.model, w) }

func (r *remoteBackend) Cores() (int, error) {
	sum, err := r.client.Summary(r.ctx, r.model)
	if err != nil {
		return 0, err
	}
	return sum.Cores, nil
}

func (r *remoteBackend) CUDADevices() (int, error) {
	sum, err := r.client.Summary(r.ctx, r.model)
	if err != nil {
		return 0, err
	}
	return sum.CUDADevices, nil
}

func (r *remoteBackend) StaticPower() (units.Quantity, error) {
	sum, err := r.client.Summary(r.ctx, r.model)
	if err != nil {
		return units.Quantity{}, err
	}
	// The wire carries watts; the local path prints a power quantity.
	return units.Quantity{Value: sum.StaticPowerW, Dim: units.Power}, nil
}

func (r *remoteBackend) Installed() ([]string, error) {
	sum, err := r.client.Summary(r.ctx, r.model)
	if err != nil {
		return nil, err
	}
	return sum.Installed, nil
}

func (r *remoteBackend) Get(ident, attr string) (string, error) {
	e, err := r.client.Element(r.ctx, r.model, ident)
	if err != nil {
		return "", err
	}
	a, ok := e.Attrs[attr]
	if !ok {
		return "", fmt.Errorf("element %q has no attribute %q", ident, attr)
	}
	if a.Value != nil {
		return a.Display, nil
	}
	return a.Raw, nil
}

func (r *remoteBackend) Select(sel string) ([]selRow, error) {
	resp, err := r.client.Select(r.ctx, r.model, sel, 0)
	if err != nil {
		return nil, err
	}
	rows := make([]selRow, 0, len(resp.Elements))
	for _, e := range resp.Elements {
		rows = append(rows, selRow{Kind: e.Kind, Path: e.Path})
	}
	return rows, nil
}

func (r *remoteBackend) Eval(src string) (string, error) {
	resp, err := r.client.Eval(r.ctx, r.model, src, nil)
	if err != nil {
		return "", err
	}
	return resp.Text, nil
}

// localize makes the runtime model available as a local file: paths
// pass through, http(s) URLs are downloaded with the repository's
// retry/backoff policy into a temporary file.
func localize(rt string) (string, error) {
	if !strings.HasPrefix(rt, "http://") && !strings.HasPrefix(rt, "https://") {
		return rt, nil
	}
	body, err := repo.FetchURL(context.Background(), rt, repo.DefaultFetchConfig())
	if err != nil {
		return "", err
	}
	f, err := os.CreateTemp("", "xpdlquery-*"+filepath.Ext(rt))
	if err != nil {
		return "", err
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return f.Name(), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xpdlquery:", err)
	os.Exit(1)
}
