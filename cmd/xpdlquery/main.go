// Command xpdlquery loads a runtime model file written by xpdltool and
// answers introspection queries — the command-line face of the runtime
// query API (Section IV).
//
// The runtime model may also be fetched over HTTP(S) — useful when a
// deployment service publishes the composed model next to the
// descriptor library. The download uses the repository's retry/backoff
// policy so a flaky network does not fail the query:
//
//	xpdlquery -rt http://models.example.com/liu.xrt cores
//
// Usage:
//
//	xpdlquery -rt liu.xrt tree                # print the model tree
//	xpdlquery -rt liu.xrt cores               # derived core count
//	xpdlquery -rt liu.xrt cuda-devices        # CUDA device count
//	xpdlquery -rt liu.xrt static-power        # total static power (W)
//	xpdlquery -rt liu.xrt installed           # installed software list
//	xpdlquery -rt liu.xrt get gpu1 compute_capability
//	xpdlquery -rt liu.xrt eval "installed('CUBLAS') && num_cores() >= 4"
//	xpdlquery -rt liu.xrt select "//cache[name=L3]"
//	xpdlquery -rt liu.xrt json                # export the model as JSON
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"xpdl/internal/expr"
	"xpdl/internal/obs"
	"xpdl/internal/query"
	"xpdl/internal/repo"
)

func main() {
	rt := flag.String("rt", "", "runtime model file (.xrt) or http(s) URL")
	metrics := flag.Bool("metrics", false, "print the metrics registry (lookup/selector counters) after the command")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/pprof and /debug/vars on this address while running")
	flag.Parse()
	if *rt == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "xpdlquery: usage: xpdlquery -rt model.xrt <tree|cores|cuda-devices|static-power|installed|get id attr|eval expr>")
		os.Exit(2)
	}
	if *obsAddr != "" {
		addr, shutdown, err := obs.Serve(*obsAddr)
		if err != nil {
			fail(err)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "xpdlquery: observability endpoints on http://%s\n", addr)
	}
	if *metrics {
		defer func() {
			fmt.Fprintln(os.Stderr, "metrics:")
			_ = obs.Default().WritePrometheus(os.Stderr)
		}()
	}
	path, err := localize(*rt)
	if err != nil {
		fail(err)
	}
	s, err := query.Init(path)
	if err != nil {
		fail(err)
	}
	switch cmd := flag.Arg(0); cmd {
	case "tree":
		printTree(s.Root(), 0)
	case "cores":
		fmt.Println(s.Root().NumCores())
	case "cuda-devices":
		fmt.Println(s.Root().NumCUDADevices())
	case "static-power":
		fmt.Println(s.Root().TotalStaticPower())
	case "installed":
		for _, pkg := range s.InstalledList() {
			fmt.Println(pkg)
		}
	case "get":
		if flag.NArg() != 3 {
			fail(fmt.Errorf("get needs <ident> <attr>"))
		}
		e, ok := s.Find(flag.Arg(1))
		if !ok {
			fail(fmt.Errorf("element %q not found", flag.Arg(1)))
		}
		if q, ok := e.GetQuantity(flag.Arg(2)); ok {
			fmt.Println(q)
			return
		}
		if v, ok := e.GetString(flag.Arg(2)); ok {
			fmt.Println(v)
			return
		}
		fail(fmt.Errorf("element %q has no attribute %q", flag.Arg(1), flag.Arg(2)))
	case "json":
		if err := s.Model().WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
	case "select":
		if flag.NArg() != 2 {
			fail(fmt.Errorf("select needs one selector argument"))
		}
		elems, err := s.Select(flag.Arg(1))
		if err != nil {
			fail(err)
		}
		for _, e := range elems {
			fmt.Printf("%s\t%s\n", e.Kind(), e.Path())
		}
	case "eval":
		v, err := expr.Eval(strings.Join(flag.Args()[1:], " "), s.Env(nil))
		if err != nil {
			fail(err)
		}
		fmt.Println(v.GoString())
	default:
		fail(fmt.Errorf("unknown command %q", cmd))
	}
}

func printTree(e query.Elem, depth int) {
	if !e.Valid() {
		return
	}
	line := strings.Repeat("  ", depth) + e.Kind()
	if id := e.Ident(); id != "" {
		line += " " + id
	}
	if t := e.TypeName(); t != "" {
		line += " : " + t
	}
	fmt.Println(line)
	for _, c := range e.Children() {
		printTree(c, depth+1)
	}
}

// localize makes the runtime model available as a local file: paths
// pass through, http(s) URLs are downloaded with the repository's
// retry/backoff policy into a temporary file.
func localize(rt string) (string, error) {
	if !strings.HasPrefix(rt, "http://") && !strings.HasPrefix(rt, "https://") {
		return rt, nil
	}
	body, err := repo.FetchURL(context.Background(), rt, repo.DefaultFetchConfig())
	if err != nil {
		return "", err
	}
	f, err := os.CreateTemp("", "xpdlquery-*"+filepath.Ext(rt))
	if err != nil {
		return "", err
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return f.Name(), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xpdlquery:", err)
	os.Exit(1)
}
