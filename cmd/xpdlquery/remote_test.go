package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"testing"

	"xpdl/internal/core"
	"xpdl/internal/query"
	"xpdl/internal/serve"
)

// TestRemoteBackendParity runs every query command against the same
// model twice — once through the in-process session, once through a
// live xpdld over HTTP — and requires byte-identical output. This is
// the contract that lets scripts switch between `-rt file.xrt` and
// `-remote http://...` without caring which one answered.
func TestRemoteBackendParity(t *testing.T) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("caller unknown")
	}
	models := filepath.Join(filepath.Dir(file), "..", "..", "models")
	const system = "liu_gpu_server"

	// Local path: toolchain → runtime model → session.
	tc, err := core.New(core.Options{SearchPaths: []string{models}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tc.Process(system)
	if err != nil {
		t.Fatal(err)
	}
	local := &localBackend{s: query.NewSession(res.Runtime)}

	// Remote path: the same toolchain options behind a live daemon.
	loader, err := serve.NewToolchainLoader(core.Options{SearchPaths: []string{models}})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(serve.Config{Store: serve.NewStore(loader, 0)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	commands := [][]string{
		{"tree"},
		{"cores"},
		{"cuda-devices"},
		{"static-power"},
		{"installed"},
		{"get", "gpu1", "compute_capability"},
		{"get", "gpu1", "static_power"},
		{"select", "//device"},
		{"select", "//cache"},
		// Indexed fast-path shapes: (kind,name), id, and kind-scan
		// lookups must print exactly what the walker would.
		{"select", "//cache[name=L2]"},
		{"select", "//device[id=gpu1]"},
		{"select", "//core[frequency>=1e9]"},
		{"eval", "installed('CUBLAS') && num_cores() >= 4"},
		{"eval", "num_cores() * 2"},
		{"json"},
	}
	// Both wire protocols must print exactly what the in-process
	// session prints — the binary ride-along is invisible to scripts.
	for name, proto := range map[string]serve.Proto{"json": serve.ProtoJSON, "bin": serve.ProtoBinary} {
		t.Run(name, func(t *testing.T) {
			client := serve.NewClient(ts.URL)
			client.Proto = proto
			remote := &remoteBackend{
				ctx:    context.Background(),
				client: client,
				model:  system,
			}
			for _, args := range commands {
				var lout, rout bytes.Buffer
				if err := run(local, &lout, args); err != nil {
					t.Fatalf("local %v: %v", args, err)
				}
				if err := run(remote, &rout, args); err != nil {
					t.Fatalf("remote %v: %v", args, err)
				}
				if lout.String() != rout.String() {
					t.Errorf("command %v: local and remote output differ\nlocal:\n%s\nremote:\n%s",
						args, lout.String(), rout.String())
				}
				if lout.Len() == 0 {
					t.Errorf("command %v produced no output", args)
				}
			}
		})
	}
}

// TestRemoteBackendErrors: failures surface as errors, not panics or
// empty output.
func TestRemoteBackendErrors(t *testing.T) {
	_, file, _, _ := runtime.Caller(0)
	models := filepath.Join(filepath.Dir(file), "..", "..", "models")
	loader, err := serve.NewToolchainLoader(core.Options{SearchPaths: []string{models}})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(serve.Config{Store: serve.NewStore(loader, 0)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	unknown := &remoteBackend{ctx: context.Background(), client: serve.NewClient(ts.URL), model: "no_such_system"}
	if _, err := unknown.Cores(); err == nil {
		t.Error("unknown model: expected an error")
	}
	known := &remoteBackend{ctx: context.Background(), client: serve.NewClient(ts.URL), model: "myriad_standalone"}
	if _, err := known.Get("no_such_elem", "x"); err == nil {
		t.Error("unknown element: expected an error")
	}
	if _, err := known.Eval("1 +"); err == nil {
		t.Error("malformed expression: expected an error")
	}
	var buf bytes.Buffer
	if err := run(known, &buf, []string{"bogus"}); err == nil {
		t.Error("unknown command: expected an error")
	}
}
