// Command xpdlload drives synthetic query load against a running
// xpdld and reports throughput and latency percentiles — the
// measurement half of the serving experiments (EXPERIMENTS.md
// E15/E16/E17/E18) and the smoke probe of the CI serve job.
//
// Usage:
//
//	xpdlload -addr http://localhost:8360 -model liu_gpu_server -c 8 -duration 10s
//
// -addr accepts a comma-separated list of xpdld base URLs; more than
// one switches on cluster mode: every request routes over a rendezvous
// ring (replication factor -replicas) to the model's replica set,
// spreads across healthy replicas, and fails over on transport errors
// — a request only counts as failed when EVERY member refused it. The
// report gains a "route:" line (members up, picks, failovers) and the
// run exports the same xpdl_route_* metrics the serving tier uses, so
// a kill-a-member experiment can assert zero failed requests while the
// failover counter climbs.
//
// Including "batch" in -mix drives the /batch endpoint instead of one
// request per query: each batch request packs -batch N select/eval
// operations (default 8), so N queries cost one HTTP round trip — the
// amortized mode of EXPERIMENTS.md E17.
//
// Including "sweep" in -mix submits one async sweep job per request
// (body from -sweep-spec); the daemon's bounded job queue answers 429
// once saturated, which the report counts as throttling rather than
// failure — the submission-path probe of the scenario job API.
//
// -proto selects the wire protocol: "json" (default), "bin" (negotiate
// application/x-xpdl-bin answers), or "both" (alternate per request
// and report a per-protocol breakdown — the comparison mode of
// EXPERIMENTS.md E18). In binary mode every 2xx response's
// Content-Type is verified; a mismatch counts as a protocol error and
// fails the run.
//
// With -trace-sample > 0 the given fraction of requests carries a
// sampled W3C traceparent header, forcing the daemon to retain those
// traces in /debug/traces; the report then names the slowest request's
// trace ID so the worst latency of a run can be explained span by span.
//
// The exit status is 0 only when the run saw at least one 2xx response
// and no transport or protocol errors, so scripts can assert "the
// daemon actually served load" with a plain `xpdlload && ...`.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xpdl/internal/obs"
	"xpdl/internal/serve"
	"xpdl/internal/shard"
)

// probe is one endpoint of the load mix.
type probe struct {
	name   string
	method string
	path   string // relative to /v1/models/{model}
	body   string
}

func probes(model string, batchOps int, sweepSpec string) map[string]probe {
	return map[string]probe{
		"summary": {"summary", http.MethodGet, "/summary", ""},
		"element": {"element", http.MethodGet, "/element?ident=" + url.QueryEscape(model), ""},
		"select":  {"select", http.MethodGet, "/select?q=" + url.QueryEscape("//core"), ""},
		"eval":    {"eval", http.MethodPost, "/eval", `{"expr": "num_cores() >= 1"}`},
		"tree":    {"tree", http.MethodGet, "/tree", ""},
		"batch":   {"batch", http.MethodPost, "/batch", batchBody(batchOps)},
		"sweep":   {"sweep", http.MethodPost, "/sweep", sweepSpec},
	}
}

// batchBody builds a /batch payload of n select/eval operations — the
// amortized client path the batch mode measures against the
// one-request-per-query endpoints.
func batchBody(n int) string {
	selectors := []string{"//core", "//cache", "//device"}
	ops := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if i%4 == 3 {
			ops = append(ops, `{"op": "eval", "expr": "num_cores() >= 1"}`)
		} else {
			ops = append(ops, fmt.Sprintf(`{"op": "select", "selector": %q}`, selectors[i%len(selectors)]))
		}
	}
	return `{"ops": [` + strings.Join(ops, ", ") + `]}`
}

// protoStats aggregates one wire protocol's share of a run.
type protoStats struct {
	latencies []time.Duration
	byCode    map[int]int // exact status code -> count
	transport int         // request errors (connect, timeout)
	mismatch  int         // 2xx answers with the wrong Content-Type
	bytes     int64       // response body bytes read
}

func newProtoStats() *protoStats {
	return &protoStats{byCode: map[int]int{}}
}

type workerStats struct {
	perProto map[string]*protoStats

	slowest      time.Duration
	slowestProbe string
	slowestTrace string // from the X-Xpdl-Trace response header
}

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8360", "base URL(s) of the xpdld instance(s), comma-separated (more than one switches on cluster routing)")
		replicas    = flag.Int("replicas", 2, "per-model replica placement factor in cluster mode")
		model       = flag.String("model", "", "system model identifier to query (required)")
		duration    = flag.Duration("duration", 5*time.Second, "how long to generate load")
		conc        = flag.Int("c", 4, "concurrent load workers")
		mix         = flag.String("mix", "summary,element,select,eval", "comma-separated endpoint mix (summary, element, select, eval, tree, batch)")
		batchOps    = flag.Int("batch", 8, `select/eval operations per /batch request (the "batch" mix endpoint)`)
		sweepSpec   = flag.String("sweep-spec", "", `sweep spec JSON file for the "sweep" mix endpoint (each request submits one async job; 429s count as throttling, not failure)`)
		proto       = flag.String("proto", "json", `wire protocol: "json", "bin", or "both" (alternate and report per-protocol)`)
		traceSample = flag.Float64("trace-sample", 0, "fraction of requests sent with a sampled traceparent (the daemon retains those traces)")
		watchers    = flag.Int("watchers", 0, "SSE watch subscribers held open for the duration (counts generation-change events)")
		serverStats = flag.Bool("server-stats", false, "after the run, fetch /v1/stats/queries and print the daemon's own per-digest accounting of the load")
	)
	flag.Parse()
	if *model == "" {
		fmt.Fprintln(os.Stderr, "xpdlload: -model is required")
		os.Exit(2)
	}
	if *batchOps < 1 {
		fmt.Fprintln(os.Stderr, "xpdlload: -batch must be at least 1")
		os.Exit(2)
	}
	var protos []string
	switch *proto {
	case "json", "bin":
		protos = []string{*proto}
	case "both":
		protos = []string{"json", "bin"}
	default:
		fmt.Fprintf(os.Stderr, "xpdlload: -proto must be json, bin or both (got %q)\n", *proto)
		os.Exit(2)
	}
	var sweepBody string
	if *sweepSpec != "" {
		b, err := os.ReadFile(*sweepSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xpdlload: -sweep-spec: %v\n", err)
			os.Exit(2)
		}
		sweepBody = string(b)
	}
	all := probes(*model, *batchOps, sweepBody)
	var mixProbes []probe
	for _, name := range strings.Split(*mix, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, ok := all[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "xpdlload: unknown endpoint %q in -mix\n", name)
			os.Exit(2)
		}
		if name == "sweep" && sweepBody == "" {
			fmt.Fprintln(os.Stderr, `xpdlload: the "sweep" mix endpoint needs -sweep-spec`)
			os.Exit(2)
		}
		mixProbes = append(mixProbes, p)
	}
	if len(mixProbes) == 0 {
		fmt.Fprintln(os.Stderr, "xpdlload: empty -mix")
		os.Exit(2)
	}

	var endpoints []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimRight(strings.TrimSpace(a), "/"); a != "" {
			endpoints = append(endpoints, a)
		}
	}
	if len(endpoints) == 0 {
		fmt.Fprintln(os.Stderr, "xpdlload: -addr is empty")
		os.Exit(2)
	}
	cluster := len(endpoints) > 1
	ring, err := shard.New(shard.Config{Members: endpoints, Replicas: *replicas})
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpdlload: %v\n", err)
		os.Exit(2)
	}
	modelPath := "/v1/models/" + url.PathEscape(*model)
	// http.DefaultTransport keeps only 2 idle conns per host, which
	// collapses a -c 64 run onto 2 reused connections plus constant
	// dial churn; keep at least one warm connection per worker.
	maxIdle := *conc
	if maxIdle < 64 {
		maxIdle = 64
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			Proxy:               http.ProxyFromEnvironment,
			ForceAttemptHTTP2:   true,
			MaxIdleConns:        4 * maxIdle,
			MaxIdleConnsPerHost: maxIdle,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	sampler := obs.NewSampler(*traceSample)
	deadline := time.Now().Add(*duration)

	// Watch subscribers ride alongside the query load: each holds one
	// SSE stream open and counts the generation-change events it sees,
	// so hot-swap behavior under load is visible in the report.
	var watchEvents atomic.Int64
	var watchWG sync.WaitGroup
	if *watchers > 0 {
		watchCtx, watchCancel := context.WithDeadline(context.Background(), deadline)
		defer watchCancel()
		wc := serve.NewClient(endpoints[0])
		wc.HTTP = &http.Client{} // no overall timeout: the stream lives until the deadline
		for i := 0; i < *watchers; i++ {
			watchWG.Add(1)
			go func() {
				defer watchWG.Done()
				_ = wc.Watch(watchCtx, *model, 0, func(serve.WatchEvent) error {
					watchEvents.Add(1)
					return nil
				})
			}()
		}
	}
	stats := make([]workerStats, *conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			st.perProto = map[string]*protoStats{}
			for _, pr := range protos {
				st.perProto[pr] = newProtoStats()
			}
			for i := 0; time.Now().Before(deadline); i++ {
				p := mixProbes[(i+w)%len(mixProbes)]
				pr := protos[i%len(protos)]
				ps := st.perProto[pr]
				sampled := sampler.Sample()
				// Walk the ring's failover order for this request; the
				// single-endpoint order is just that endpoint. A transport
				// error marks the member down and moves on — only a request
				// that every member refused counts as failed.
				var resp *http.Response
				var reqErr error
				t0 := time.Now()
				for _, member := range ring.Order(*model) {
					var body io.Reader
					if p.body != "" {
						body = strings.NewReader(p.body)
					}
					req, err := http.NewRequest(p.method, member+modelPath+p.path, body)
					if err != nil {
						reqErr = err
						break
					}
					if p.body != "" {
						req.Header.Set("Content-Type", "application/json")
					}
					if pr == "bin" {
						req.Header.Set("Accept", serve.ContentTypeBinary)
					}
					if sampled {
						tc := obs.TraceContext{
							TraceID: obs.NewTraceID(),
							SpanID:  obs.NewSpanID(),
							Sampled: true,
						}
						req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
					}
					resp, reqErr = client.Do(req)
					if reqErr == nil {
						ring.ReportSuccess(member)
						break
					}
					ring.ReportFailure(member)
				}
				if reqErr != nil || resp == nil {
					ps.transport++
					continue
				}
				n, _ := io.Copy(io.Discard, resp.Body)
				lat := time.Since(t0)
				ps.latencies = append(ps.latencies, lat)
				ps.byCode[resp.StatusCode]++
				ps.bytes += n
				if pr == "bin" && resp.StatusCode/100 == 2 {
					if mt, _, _ := mime.ParseMediaType(resp.Header.Get("Content-Type")); mt != serve.ContentTypeBinary {
						ps.mismatch++
					}
				}
				if lat > st.slowest {
					st.slowest = lat
					st.slowestProbe = p.name
					st.slowestTrace = resp.Header.Get("X-Xpdl-Trace")
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	watchWG.Wait()

	// Merge per-worker stats, overall and per protocol.
	merged := map[string]*protoStats{}
	for _, pr := range protos {
		merged[pr] = newProtoStats()
	}
	var all2xx, transport, mismatch int
	var lats []time.Duration
	byCode := map[int]int{}
	var slowest workerStats
	for _, st := range stats {
		for pr, ps := range st.perProto {
			m := merged[pr]
			m.latencies = append(m.latencies, ps.latencies...)
			m.transport += ps.transport
			m.mismatch += ps.mismatch
			m.bytes += ps.bytes
			transport += ps.transport
			mismatch += ps.mismatch
			lats = append(lats, ps.latencies...)
			for code, n := range ps.byCode {
				m.byCode[code] += n
				byCode[code] += n
				if code/100 == 2 {
					all2xx += n
				}
			}
		}
		if st.slowest > slowest.slowest {
			slowest = st
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	codes := make([]int, 0, len(byCode))
	for code := range byCode {
		codes = append(codes, code)
	}
	sort.Ints(codes)

	total := len(lats)
	fmt.Printf("xpdlload: %d requests in %s (%.0f req/s), %d workers, mix %s, proto %s\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), *conc, *mix, *proto)
	if cluster {
		rst := ring.Stats()
		fmt.Printf("  route: %d members (%d up), %d picks, %d failovers, transitions down %d up %d\n",
			len(endpoints), rst.MembersUp, rst.Picks, rst.Failovers, rst.TransDown, rst.TransUp)
	}
	for _, code := range codes {
		line := fmt.Sprintf("  %d %s: %d", code, http.StatusText(code), byCode[code])
		fmt.Println(strings.TrimRight(line, " "))
	}
	if transport > 0 {
		fmt.Printf("  transport errors: %d\n", transport)
	}
	if mismatch > 0 {
		fmt.Printf("  protocol errors (wrong Content-Type): %d\n", mismatch)
	}
	if total > 0 {
		fmt.Printf("  latency: p50 %s  p90 %s  p99 %s  max %s\n",
			pct(lats, 50), pct(lats, 90), pct(lats, 99), lats[total-1])
	}
	// Per-protocol breakdown: the E18 comparison. Printed whenever the
	// binary protocol is in play, even alone, so scripts can always
	// scrape the "proto bin:" line in -proto bin runs.
	if len(protos) > 1 || protos[0] == "bin" {
		for _, pr := range protos {
			m := merged[pr]
			sort.Slice(m.latencies, func(i, j int) bool { return m.latencies[i] < m.latencies[j] })
			n := len(m.latencies)
			if n == 0 {
				fmt.Printf("  proto %s: 0 requests\n", pr)
				continue
			}
			avg := m.bytes / int64(n)
			fmt.Printf("  proto %s: %d requests (%.0f req/s), p50 %s  p99 %s, avg %d B/resp\n",
				pr, n, float64(n)/elapsed.Seconds(), pct(m.latencies, 50), pct(m.latencies, 99), avg)
		}
	}
	if *watchers > 0 {
		fmt.Printf("  watchers: %d subscribers, %d events seen\n", *watchers, watchEvents.Load())
	}
	if slowest.slowest > 0 {
		line := fmt.Sprintf("  slowest: %s on %s", slowest.slowest, slowest.slowestProbe)
		if slowest.slowestTrace != "" {
			line += " (trace " + slowest.slowestTrace + ")"
		}
		fmt.Println(line)
	}
	// The daemon's own accounting of what we just sent: each digest is
	// one query class (endpoint + plan shape + proto), so the client-side
	// totals above can be reconciled against the server's attribution.
	if *serverStats {
		sc := serve.NewClient(strings.TrimRight(*addr, "/"))
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		qs, err := sc.QueryStats(ctx, "calls", 0, *model)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "xpdlload: server stats: %v\n", err)
		} else {
			fmt.Printf("  server digests: %d (%d samples recorded, %d evicted)\n",
				qs.Digests, qs.Recorded, qs.Evicted)
			for _, row := range qs.Rows {
				shape := row.Shape
				if shape != "" {
					shape = " " + shape
				}
				fmt.Printf("    %-10s %-4s%s: %d calls, %d errors, p50 %.2fms p99 %.2fms, %d B out\n",
					row.Endpoint, row.Proto, shape, row.Calls, row.Errors,
					row.P50S*1e3, row.P99S*1e3, row.RespBytes)
			}
		}
	}
	if all2xx == 0 {
		fmt.Fprintln(os.Stderr, "xpdlload: FAIL: no 2xx responses")
		os.Exit(1)
	}
	if transport > 0 {
		fmt.Fprintln(os.Stderr, "xpdlload: FAIL: transport errors")
		os.Exit(1)
	}
	if mismatch > 0 {
		fmt.Fprintln(os.Stderr, "xpdlload: FAIL: protocol errors")
		os.Exit(1)
	}
}

// pct returns the p-th percentile of sorted latencies.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
