// Command xpdlload drives synthetic query load against a running
// xpdld and reports throughput and latency percentiles — the
// measurement half of the serving experiments (EXPERIMENTS.md E15/E16)
// and the smoke probe of the CI serve job.
//
// Usage:
//
//	xpdlload -addr http://localhost:8360 -model liu_gpu_server -c 8 -duration 10s
//
// Including "batch" in -mix drives the /batch endpoint instead of one
// request per query: each batch request packs -batch N select/eval
// operations (default 8), so N queries cost one HTTP round trip — the
// amortized mode of EXPERIMENTS.md E17.
//
// With -trace-sample > 0 the given fraction of requests carries a
// sampled W3C traceparent header, forcing the daemon to retain those
// traces in /debug/traces; the report then names the slowest request's
// trace ID so the worst latency of a run can be explained span by span.
//
// The exit status is 0 only when the run saw at least one 2xx response
// and no transport errors, so scripts can assert "the daemon actually
// served load" with a plain `xpdlload && ...`.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"xpdl/internal/obs"
)

// probe is one endpoint of the load mix.
type probe struct {
	name   string
	method string
	path   string // relative to /v1/models/{model}
	body   string
}

func probes(model string, batchOps int) map[string]probe {
	return map[string]probe{
		"summary": {"summary", http.MethodGet, "/summary", ""},
		"element": {"element", http.MethodGet, "/element?ident=" + url.QueryEscape(model), ""},
		"select":  {"select", http.MethodGet, "/select?q=" + url.QueryEscape("//core"), ""},
		"eval":    {"eval", http.MethodPost, "/eval", `{"expr": "num_cores() >= 1"}`},
		"tree":    {"tree", http.MethodGet, "/tree", ""},
		"batch":   {"batch", http.MethodPost, "/batch", batchBody(batchOps)},
	}
}

// batchBody builds a /batch payload of n select/eval operations — the
// amortized client path the batch mode measures against the
// one-request-per-query endpoints.
func batchBody(n int) string {
	selectors := []string{"//core", "//cache", "//device"}
	ops := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if i%4 == 3 {
			ops = append(ops, `{"op": "eval", "expr": "num_cores() >= 1"}`)
		} else {
			ops = append(ops, fmt.Sprintf(`{"op": "select", "selector": %q}`, selectors[i%len(selectors)]))
		}
	}
	return `{"ops": [` + strings.Join(ops, ", ") + `]}`
}

type workerStats struct {
	latencies []time.Duration
	byCode    map[int]int // exact status code -> count
	transport int         // request errors (connect, timeout)

	slowest      time.Duration
	slowestProbe string
	slowestTrace string // from the X-Xpdl-Trace response header
}

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8360", "base URL of the xpdld instance")
		model       = flag.String("model", "", "system model identifier to query (required)")
		duration    = flag.Duration("duration", 5*time.Second, "how long to generate load")
		conc        = flag.Int("c", 4, "concurrent load workers")
		mix         = flag.String("mix", "summary,element,select,eval", "comma-separated endpoint mix (summary, element, select, eval, tree, batch)")
		batchOps    = flag.Int("batch", 8, `select/eval operations per /batch request (the "batch" mix endpoint)`)
		traceSample = flag.Float64("trace-sample", 0, "fraction of requests sent with a sampled traceparent (the daemon retains those traces)")
	)
	flag.Parse()
	if *model == "" {
		fmt.Fprintln(os.Stderr, "xpdlload: -model is required")
		os.Exit(2)
	}
	if *batchOps < 1 {
		fmt.Fprintln(os.Stderr, "xpdlload: -batch must be at least 1")
		os.Exit(2)
	}
	all := probes(*model, *batchOps)
	var mixProbes []probe
	for _, name := range strings.Split(*mix, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, ok := all[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "xpdlload: unknown endpoint %q in -mix\n", name)
			os.Exit(2)
		}
		mixProbes = append(mixProbes, p)
	}
	if len(mixProbes) == 0 {
		fmt.Fprintln(os.Stderr, "xpdlload: empty -mix")
		os.Exit(2)
	}

	base := strings.TrimRight(*addr, "/") + "/v1/models/" + url.PathEscape(*model)
	client := &http.Client{Timeout: 30 * time.Second}
	sampler := obs.NewSampler(*traceSample)
	deadline := time.Now().Add(*duration)
	stats := make([]workerStats, *conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			st.byCode = map[int]int{}
			for i := 0; time.Now().Before(deadline); i++ {
				p := mixProbes[(i+w)%len(mixProbes)]
				var body io.Reader
				if p.body != "" {
					body = strings.NewReader(p.body)
				}
				req, err := http.NewRequest(p.method, base+p.path, body)
				if err != nil {
					st.transport++
					continue
				}
				if p.body != "" {
					req.Header.Set("Content-Type", "application/json")
				}
				if sampler.Sample() {
					tc := obs.TraceContext{
						TraceID: obs.NewTraceID(),
						SpanID:  obs.NewSpanID(),
						Sampled: true,
					}
					req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					st.transport++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				lat := time.Since(t0)
				st.latencies = append(st.latencies, lat)
				st.byCode[resp.StatusCode]++
				if lat > st.slowest {
					st.slowest = lat
					st.slowestProbe = p.name
					st.slowestTrace = resp.Header.Get("X-Xpdl-Trace")
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all2xx, transport int
	var lats []time.Duration
	byCode := map[int]int{}
	var slowest workerStats
	for _, st := range stats {
		lats = append(lats, st.latencies...)
		transport += st.transport
		for code, n := range st.byCode {
			byCode[code] += n
			if code/100 == 2 {
				all2xx += n
			}
		}
		if st.slowest > slowest.slowest {
			slowest = st
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	codes := make([]int, 0, len(byCode))
	for code := range byCode {
		codes = append(codes, code)
	}
	sort.Ints(codes)

	total := len(lats)
	fmt.Printf("xpdlload: %d requests in %s (%.0f req/s), %d workers, mix %s\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), *conc, *mix)
	for _, code := range codes {
		line := fmt.Sprintf("  %d %s: %d", code, http.StatusText(code), byCode[code])
		fmt.Println(strings.TrimRight(line, " "))
	}
	if transport > 0 {
		fmt.Printf("  transport errors: %d\n", transport)
	}
	if total > 0 {
		fmt.Printf("  latency: p50 %s  p90 %s  p99 %s  max %s\n",
			pct(lats, 50), pct(lats, 90), pct(lats, 99), lats[total-1])
	}
	if slowest.slowest > 0 {
		line := fmt.Sprintf("  slowest: %s on %s", slowest.slowest, slowest.slowestProbe)
		if slowest.slowestTrace != "" {
			line += " (trace " + slowest.slowestTrace + ")"
		}
		fmt.Println(line)
	}
	if all2xx == 0 {
		fmt.Fprintln(os.Stderr, "xpdlload: FAIL: no 2xx responses")
		os.Exit(1)
	}
	if transport > 0 {
		fmt.Fprintln(os.Stderr, "xpdlload: FAIL: transport errors")
		os.Exit(1)
	}
}

// pct returns the p-th percentile of sorted latencies.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
