// Command xpdlgen runs the XPDL generators (Section IV): the C++
// runtime query API derived from the central schema, the xpdl.xsd
// schema document itself, and the microbenchmark driver sources for a
// suite descriptor.
//
// Usage:
//
//	xpdlgen -cpp out/              # emit xpdl_model.hpp / xpdl_model.cpp
//	xpdlgen -xsd out/              # emit xpdl.xsd
//	xpdlgen -drivers mb.xpdl -o out/  # emit C drivers + mbscript.sh
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"xpdl/internal/codegen"
	"xpdl/internal/microbench"
	"xpdl/internal/parser"
	"xpdl/internal/schema"
	"xpdl/internal/umlgen"
	"xpdl/internal/xsdgen"
)

func main() {
	var (
		cppDir  = flag.String("cpp", "", "emit the generated C++ query API into this directory")
		xsdDir  = flag.String("xsd", "", "emit xpdl.xsd into this directory")
		umlDir  = flag.String("uml", "", "emit the metamodel class diagram (PlantUML) into this directory")
		drivers = flag.String("drivers", "", "microbenchmark suite descriptor (.xpdl) to generate drivers for")
		out     = flag.String("o", ".", "output directory for -drivers")
		iters   = flag.Int("iterations", 1_000_000, "loop trip count in generated drivers")
	)
	flag.Parse()
	did := false

	if *umlDir != "" {
		writeAll(*umlDir, map[string]string{"xpdl_schema.puml": umlgen.SchemaDiagram(schema.Core())})
		did = true
	}

	if *cppDir != "" {
		files, err := codegen.GenerateCPP(schema.Core())
		if err != nil {
			fail(err)
		}
		writeAll(*cppDir, files)
		did = true
	}
	if *xsdDir != "" {
		writeAll(*xsdDir, map[string]string{"xpdl.xsd": xsdgen.Generate(schema.Core())})
		did = true
	}
	if *drivers != "" {
		src, err := os.ReadFile(*drivers)
		if err != nil {
			fail(err)
		}
		p := parser.New()
		c, _, err := p.ParseFile(*drivers, src)
		if err != nil {
			fail(err)
		}
		suite, err := microbench.SuiteFromComponent(c)
		if err != nil {
			fail(err)
		}
		writeAll(*out, microbench.GenerateDrivers(suite, *iters))
		did = true
	}
	if !did {
		fmt.Fprintln(os.Stderr, "xpdlgen: nothing to do (use -cpp, -xsd, -uml or -drivers)")
		os.Exit(2)
	}
}

func writeAll(dir string, files map[string]string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(files[name]), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(files[name]))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xpdlgen:", err)
	os.Exit(1)
}
