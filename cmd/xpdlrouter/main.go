// Command xpdlrouter is the thin routing tier in front of a cluster of
// xpdld members, for clients that should not carry routing logic
// themselves. It keeps the same rendezvous ring the client-side
// RouterClient uses: every /v1/models/{model}/... request hashes the
// model identifier to its replica set (factor -replicas), is forwarded
// to a healthy replica, spreads across replicas, and fails over —
// inside the one client request — on connect errors and on 503s
// honoring Retry-After. Non-model paths (/v1/models, /v1/jobs,
// /v1/stats/...) forward to any healthy member.
//
// Membership is health-checked: a background prober hits each member's
// /healthz every -probe-interval, marking members down after
// -fail-threshold consecutive failures and rejoining them when they
// answer again; the request path reports failures passively, so a dead
// member is usually down before the prober notices.
//
// Usage:
//
//	xpdlrouter -addr :8370 -members http://10.0.0.1:8360,http://10.0.0.2:8360,http://10.0.0.3:8360
//
// The router's own endpoints:
//
//	GET /healthz   router liveness + per-member health
//	GET /metrics   Prometheus metrics, including the xpdl_route_* family
//	               (picks, failovers, member health transitions)
//
// Everything else is forwarded verbatim — including SSE streams, which
// are flushed through unbuffered. Responses are streamed, not
// buffered; request bodies are buffered (up to 16 MiB) so a forward
// can be retried on the next member.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xpdl/internal/obs"
	"xpdl/internal/serve"
	"xpdl/internal/shard"
)

// maxBufferedBody bounds the request body copy kept for retries.
const maxBufferedBody = 16 << 20

// hopHeaders are the HTTP/1.1 hop-by-hop headers a proxy must strip.
var hopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

type router struct {
	ring    *shard.Ring
	forward *http.Client
}

func main() {
	var (
		addr       = flag.String("addr", ":8370", "listen address")
		members    = flag.String("members", "", "comma-separated base URLs of the xpdld cluster members (required)")
		replicas   = flag.Int("replicas", 2, "per-model replica placement factor")
		probeEvery = flag.Duration("probe-interval", 2*time.Second, "member health probe period")
		probeTO    = flag.Duration("probe-timeout", time.Second, "single health probe timeout")
		failAfter  = flag.Int("fail-threshold", 2, "consecutive probe failures before a member is marked down")
	)
	flag.Parse()
	var urls []string
	for _, m := range strings.Split(*members, ",") {
		if m = strings.TrimRight(strings.TrimSpace(m), "/"); m != "" {
			urls = append(urls, m)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "xpdlrouter: -members is required")
		os.Exit(2)
	}

	ring, err := shard.New(shard.Config{
		Members:       urls,
		Replicas:      *replicas,
		ProbeInterval: *probeEvery,
		ProbeTimeout:  *probeTO,
		FailThreshold: *failAfter,
		OnTransition: func(member string, up bool) {
			state := "down"
			if up {
				state = "up"
			}
			log.Printf("xpdlrouter: member %s is %s", member, state)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "xpdlrouter:", err)
		os.Exit(2)
	}
	obs.RegisterRuntimeMetrics(obs.Default())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ring.Start(ctx)
	defer ring.Stop()

	rt := &router{
		ring: ring,
		// No overall timeout: SSE forwards are long-lived. The members'
		// own request timeouts bound regular queries.
		forward: &http.Client{Transport: serve.SharedTransport},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = obs.Default().WritePrometheus(w)
	})
	mux.HandleFunc("/", rt.handleForward)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("xpdlrouter: routing to %d members on %s (replicas %d)", len(urls), *addr, *replicas)
		errCh <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "xpdlrouter:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	log.Print("xpdlrouter: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutdownCtx)
}

func (rt *router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	members := rt.ring.Members()
	up := 0
	for _, m := range members {
		if m.Up {
			up++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if up == 0 {
		// A router with no live members cannot serve anything; say so to
		// whatever health-checks the router itself.
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":  map[bool]string{true: "ok", false: "no live members"}[up > 0],
		"members": members,
	})
}

// modelIdentOf extracts the routing key from a request path:
// /v1/models/{ident}/... hashes per model; everything else routes with
// the empty ident (any healthy member).
func modelIdentOf(path string) string {
	const prefix = "/v1/models/"
	if !strings.HasPrefix(path, prefix) {
		return ""
	}
	rest := path[len(prefix):]
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

func (rt *router) handleForward(w http.ResponseWriter, r *http.Request) {
	ident := modelIdentOf(r.URL.Path)

	// Buffer the body so a failed forward can retry on the next member.
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, maxBufferedBody+1))
		r.Body.Close()
		if err != nil {
			http.Error(w, "reading request body", http.StatusBadRequest)
			return
		}
		if len(body) > maxBufferedBody {
			http.Error(w, "request body too large to route", http.StatusRequestEntityTooLarge)
			return
		}
	}

	var lastStatus *http.Response
	for _, member := range rt.ring.Order(ident) {
		resp, err := rt.forwardTo(r, member, body)
		if err != nil {
			if r.Context().Err() != nil {
				return // the client hung up; nothing left to answer
			}
			rt.ring.ReportFailure(member)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			rt.ring.ReportBusy(member, retryAfterOf(resp))
			if lastStatus != nil {
				lastStatus.Body.Close()
			}
			lastStatus = resp
			continue
		}
		rt.ring.ReportSuccess(member)
		if lastStatus != nil {
			lastStatus.Body.Close()
		}
		rt.relay(w, resp)
		return
	}
	// Every member failed. Relay the last real answer (a 503 chain) if
	// any member produced one; otherwise the cluster is unreachable.
	if lastStatus != nil {
		rt.relay(w, lastStatus)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadGateway)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": "no cluster member reachable"})
}

func (rt *router) forwardTo(r *http.Request, member string, body []byte) (*http.Response, error) {
	u := member + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, rd)
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	for _, h := range hopHeaders {
		req.Header.Del(h)
	}
	// Standard reverse-proxy provenance.
	if host, _, ok := strings.Cut(r.RemoteAddr, ":"); ok && host != "" {
		prior := req.Header.Get("X-Forwarded-For")
		if prior != "" {
			host = prior + ", " + host
		}
		req.Header.Set("X-Forwarded-For", host)
	}
	return rt.forward.Do(req)
}

// relay streams one upstream response to the client, flushing as it
// goes so SSE events pass through unbuffered.
func (rt *router) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	for _, hh := range hopHeaders {
		h.Del(hh)
	}
	w.WriteHeader(resp.StatusCode)
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// retryAfterOf parses the Retry-After of an upstream 503 in both RFC
// 9110 forms; zero means absent.
func retryAfterOf(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	var secs int
	if _, err := fmt.Sscanf(v, "%d", &secs); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}
