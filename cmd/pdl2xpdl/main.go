// Command pdl2xpdl converts a PEPPHER PDL platform description (the
// predecessor language reviewed in Section II) into an XPDL system
// model: the control-relation tree becomes hardware structure with the
// control roles preserved as secondary role attributes, memory regions
// and interconnects become their XPDL counterparts, and all free-form
// properties are carried over into <properties> blocks.
//
// Usage:
//
//	pdl2xpdl platform.pdl > platform.xpdl
package main

import (
	"flag"
	"fmt"
	"os"

	"xpdl/internal/pdl"
	"xpdl/internal/xmlout"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pdl2xpdl <platform.pdl>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	platform, err := pdl.Parse(flag.Arg(0), src)
	if err != nil {
		fail(err)
	}
	if err := xmlout.Write(os.Stdout, platform.ToXPDL()); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pdl2xpdl:", err)
	os.Exit(1)
}
