// Command xpdldiff composes two concrete system models (or the same
// model against two repositories) and prints the differences — the
// maintenance view for a distributed descriptor repository: what a
// manufacturer's descriptor update or a reconfiguration actually
// changes in the composed platform.
//
// Usage:
//
//	xpdldiff -models models -old liu_gpu_server -new liu_gpu_server_v2
//	xpdldiff -models old_repo -models-new new_repo -old XScluster -new XScluster
package main

import (
	"flag"
	"fmt"
	"os"

	"xpdl/internal/core"
	"xpdl/internal/diff"
	"xpdl/internal/model"
)

func main() {
	var (
		modelsDir = flag.String("models", "models", "model repository for the old system")
		modelsNew = flag.String("models-new", "", "model repository for the new system (default: same as -models)")
		oldID     = flag.String("old", "", "old system identifier")
		newID     = flag.String("new", "", "new system identifier")
	)
	flag.Parse()
	if *oldID == "" || *newID == "" {
		fmt.Fprintln(os.Stderr, "xpdldiff: -old and -new are required")
		os.Exit(2)
	}
	if *modelsNew == "" {
		*modelsNew = *modelsDir
	}
	oldSys := compose(*modelsDir, *oldID)
	newSys := compose(*modelsNew, *newID)
	changes := diff.Diff(oldSys, newSys)
	if len(changes) == 0 {
		fmt.Println("models are identical")
		return
	}
	fmt.Println(diff.Render(changes))
	added, removed, changed := diff.Summary(changes)
	fmt.Printf("%d added, %d removed, %d attribute change(s)\n", added, removed, changed)
	os.Exit(1) // diff-style exit code when differences exist
}

func compose(dir, system string) *model.Component {
	tc, err := core.New(core.Options{SearchPaths: []string{dir}, KeepUnknown: true})
	if err != nil {
		fail(err)
	}
	res, err := tc.Process(system)
	if err != nil {
		fail(err)
	}
	return res.System
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xpdldiff:", err)
	os.Exit(1)
}
