// Command xpdldiscover inspects the host machine (/proc, /sys) and
// emits an XPDL system descriptor for it — an hwloc-style bootstrap for
// the model repository (Section V compares XPDL with hwloc; this tool
// closes the loop by producing XPDL from the OS's hardware inventory).
//
// Usage:
//
//	xpdldiscover > host.xpdl
//	xpdldiscover -root /some/chroot -id build_server > build_server.xpdl
package main

import (
	"flag"
	"fmt"
	"os"

	"xpdl/internal/discover"
	"xpdl/internal/xmlout"
)

func main() {
	root := flag.String("root", "/", "filesystem root holding proc/ and sys/")
	id := flag.String("id", "", "system identifier (default: discovered_host)")
	flag.Parse()
	sys, err := discover.Host(discover.Options{Root: *root, SystemID: *id})
	if err != nil {
		fmt.Fprintln(os.Stderr, "xpdldiscover:", err)
		os.Exit(1)
	}
	if err := xmlout.Write(os.Stdout, sys); err != nil {
		fmt.Fprintln(os.Stderr, "xpdldiscover:", err)
		os.Exit(1)
	}
}
