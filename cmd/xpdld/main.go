// Command xpdld is the hot-swapping platform-model query service: a
// long-running daemon that resolves XPDL system models through the
// processing toolchain once, holds the resulting query snapshots in
// memory, and answers JSON-over-HTTP introspection requests — the
// runtime query API of Section IV served to many processes instead of
// linked into one.
//
// Models stay fresh without restarts: a background revalidator
// periodically invalidates the descriptor caches (remote descriptors
// revalidate with conditional requests and usually cost one 304) and
// re-resolves every resident model, atomically swapping in snapshots
// whose content actually changed. In-flight requests keep the snapshot
// they started with. Bounded descriptor edits — a single attribute
// value change that no parameter, override or synthesized attribute
// touches — are applied as in-place delta patches that reuse the old
// snapshot's indexes and pre-serialized answers instead of re-running
// the resolver; everything else falls back to a full resolve
// (xpdl_delta_fallback_total counts why). Either way, watchers on
// GET /v1/models/{model}/watch receive one generation-change event per
// swap.
//
// Usage:
//
//	xpdld -models models -preload liu_gpu_server -addr :8360
//
// Endpoints (all under /v1/models/{model}):
//
//	GET  /healthz                    liveness + resident models
//	GET  /v1/models                  resident model inventory
//	GET  .../summary                 cores, CUDA devices, static power, installed software
//	GET  .../tree  .../json          model exports (xpdlquery-compatible)
//	GET  .../element?ident=gpu1      element lookup by qualified name
//	GET  .../select?q=//cache        selector evaluation (also POST)
//	POST .../eval                    expression evaluation in the model env
//	POST .../batch                   many select/eval ops, one round trip
//	GET  .../energy?table=e5_isa&inst=divsd&ghz=3.0
//	GET  .../transfer?channel=up_link&bytes=1048576
//	POST .../dispatch                composition variant selection
//	POST .../refresh                 manual revalidation (unless -allow-refresh=false)
//	GET  .../watch                   generation-change events (SSE; long poll via ?since=&wait=)
//	POST .../sweep                   submit an async parameter sweep, returns a job handle
//	GET  /v1/jobs  /v1/jobs/{id}     job inventory and status (?points=1 for full results)
//	GET  /v1/jobs/{id}/stream        per-point sweep progress (SSE, resumable via ?since=)
//	POST /v1/jobs/{id}/cancel        cancel a queued or running sweep
//	GET  /v1/stats/queries           per-digest statement statistics (?sort=&limit=&model=)
//	GET  /metrics /debug/pprof/ /debug/vars
//	GET  /debug/traces               recent completed request traces
//	GET  /debug/traces/{id}          one trace's full span tree as JSON
//
// Every /v1 endpoint speaks two wire protocols. The default is
// pretty-printed JSON. A client that sends
// `Accept: application/x-xpdl-bin` gets the same answer as a
// length-prefixed binary frame with interned strings (the runtime
// model format's envelope) — cheaper to produce and parse, served
// from pre-serialized per-snapshot buffers on the hot endpoints
// (summary, tree, json, element). Negotiation is opt-in only: absent,
// */* or application/json Accept headers get byte-identical JSON, so
// existing clients never see a change. serve.Client speaks either
// protocol (Client.Proto), and `xpdlquery -remote` rides the binary
// one by default.
//
// Every request is traced: an incoming W3C traceparent header joins
// the caller's trace, otherwise -trace-sample decides whether the
// fresh trace is retained. 5xx responses are always retained. The
// response header X-Xpdl-Trace names the trace either way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xpdl/internal/core"
	"xpdl/internal/obs"
	"xpdl/internal/query"
	"xpdl/internal/repo"
	"xpdl/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8360", "listen address")
		models      = flag.String("models", "models", "comma-separated local model repository directories")
		remotes     = flag.String("remote", "", "comma-separated base URLs of remote model libraries")
		preload     = flag.String("preload", "", "comma-separated system identifiers to resolve at startup")
		revalidate  = flag.Duration("revalidate", 30*time.Second, "revalidation poll interval (0 disables hot swapping)")
		maxModels   = flag.Int("max-models", 0, "maximum resident models, LRU-evicted beyond (0 = unbounded)")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Second, "per-request timeout")
		maxInflight = flag.Int("max-inflight", 256, "maximum concurrently served requests")
		cacheDir    = flag.String("cache-dir", "", "on-disk descriptor cache for remote libraries (enables offline fallback)")
		allowRef    = flag.Bool("allow-refresh", true, "expose POST /v1/models/{model}/refresh")
		watchBuffer = flag.Int("watch-buffer", 16, "per-subscriber watch event queue; slower consumers are evicted")
		seed        = flag.Int64("seed", 1, "simulated-substrate seed for '?' calibration")
		planCache   = flag.Int("plan-cache", 1024, "maximum cached compiled selector plans (0 disables plan caching)")
		traceSample = flag.Float64("trace-sample", 0.1, "head-sampling probability for request traces (5xx always recorded; clients can force via traceparent)")
		maxTraces   = flag.Int("max-traces", 256, "completed traces retained behind /debug/traces")
		slowMS      = flag.Int("slow-ms", 500, "log a warn line for requests at least this slow, in milliseconds (0 disables)")
		logLevel    = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "structured log format: text or json")

		qstatsOn      = flag.Bool("qstats", true, "per-digest query statistics behind GET /v1/stats/queries")
		qstatsDigests = flag.Int("qstats-digests", 0, "retained query digests before new ones are dropped (0 = default)")
		qstatsSlow    = flag.Int("qstats-slow", 0, "slowest requests retained per table (0 = default)")

		sweepWorkers = flag.Int("sweep-workers", 0, "per-sweep resolution workers (0 = GOMAXPROCS)")
		sweepPoints  = flag.Int("sweep-max-points", 0, "server-side cap on points per sweep (0 = default)")
		jobQueue     = flag.Int("job-queue", 16, "queued (not yet running) sweep jobs before 429")
		jobWorkers   = flag.Int("job-concurrency", 2, "sweep jobs running at once")
		jobTTL       = flag.Duration("job-ttl", 15*time.Minute, "how long finished jobs stay pollable")
		maxJobs      = flag.Int("max-jobs", 64, "retained jobs (queued+running+finished) before 429")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fail(err)
	}
	logger := obs.NewLogger(os.Stderr, level, *logFormat)
	query.DefaultPlanCache().SetCapacity(*planCache)

	opts := core.Options{
		SearchPaths: splitList(*models),
		Remotes:     splitList(*remotes),
		Seed:        *seed,
	}
	if *cacheDir != "" {
		cfg := repo.DefaultFetchConfig()
		cfg.CacheDir = *cacheDir
		opts.Fetch = &cfg
	}
	loader, err := serve.NewToolchainLoader(opts)
	if err != nil {
		fail(err)
	}
	store := serve.NewStore(loader, *maxModels)
	srv := serve.NewServer(serve.Config{
		Store:          store,
		RequestTimeout: *reqTimeout,
		MaxInFlight:    *maxInflight,
		AllowRefresh:   *allowRef,
		WatchBuffer:    *watchBuffer,
		TraceSample:    *traceSample,
		MaxTraces:      *maxTraces,
		SlowRequest:    time.Duration(*slowMS) * time.Millisecond,
		Logger:         logger,
		SweepWorkers:   *sweepWorkers,
		SweepMaxPoints: *sweepPoints,
		JobQueue:       *jobQueue,
		JobConcurrency: *jobWorkers,
		JobTTL:         *jobTTL,
		MaxJobs:        *maxJobs,
		QueryStatsOff:  !*qstatsOn,
		StatsDigests:   *qstatsDigests,
		StatsSlowK:     *qstatsSlow,
	})
	loader.Repo().PublishMetrics(obs.Default())
	obs.RegisterRuntimeMetrics(obs.Default())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for _, ident := range splitList(*preload) {
		start := time.Now()
		snap, err := store.Get(ctx, ident)
		if err != nil {
			fail(fmt.Errorf("preload %s: %w", ident, err))
		}
		log.Printf("xpdld: preloaded %s (%d nodes, fingerprint %s) in %s",
			ident, snap.Nodes(), snap.Fingerprint, time.Since(start).Round(time.Millisecond))
	}

	if *revalidate > 0 {
		rv := &serve.Revalidator{
			Store:    store,
			Interval: *revalidate,
			Log:      log.Default(),
			Sampler:  srv.Sampler(),
			Traces:   srv.Traces(),
		}
		go rv.Run(ctx)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		// The write timeout must cover the request timeout plus the
		// encode of large responses (full-model JSON exports).
		WriteTimeout: *reqTimeout + 30*time.Second,
		IdleTimeout:  2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("xpdld: serving platform-model queries on %s (models: %s)", *addr, *models)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		fail(err)
	case <-ctx.Done():
	}
	log.Print("xpdld: shutting down (waiting for in-flight requests)")
	// Watch streams are long-lived requests; end them first or Shutdown
	// would wait for subscribers that never hang up. The same goes for
	// sweep jobs and their event streams: Close cancels running jobs,
	// marks queued ones canceled, and ends every job stream.
	srv.Close()
	store.CloseWatchers()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("xpdld: shutdown: %v", err)
	}
	log.Print("xpdld: bye")
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xpdld:", err)
	os.Exit(1)
}
