// Command xpdltool is the XPDL processing tool (Section IV): it browses
// the model repository for every descriptor a concrete system model
// references, composes and statically analyzes the model, optionally
// runs deployment-time microbenchmarks against the simulated hardware
// substrate to derive "?" attributes, and writes the light-weight
// runtime model file that applications load through the query API.
//
// Usage:
//
//	xpdltool -models models -system liu_gpu_server -o liu.xrt [-bench] [-seed 42]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"xpdl/internal/config"
	"xpdl/internal/core"
	"xpdl/internal/obs"
	"xpdl/internal/repo"
	"xpdl/internal/report"
	"xpdl/internal/umlgen"
	"xpdl/internal/xmlout"
)

func main() {
	var (
		modelsDir  = flag.String("models", "models", "model repository search path (comma-free; repeatable via -models2)")
		extraDir   = flag.String("models2", "", "additional search path")
		remote     = flag.String("remote", "", "remote model library base URL")
		system     = flag.String("system", "", "identifier of the concrete system model to process")
		out        = flag.String("o", "", "output runtime model file (.xrt); empty = no file")
		bench      = flag.Bool("bench", false, "run deployment-time microbenchmarks for ? attributes")
		force      = flag.Bool("force-bench", false, "re-benchmark even instructions with given energies")
		keep       = flag.Bool("keep-unknown", false, "retain ? attributes in the runtime model")
		seed       = flag.Int64("seed", 42, "seed for the simulated hardware substrate")
		verbose    = flag.Bool("v", false, "print the composed model tree")
		emitXPDL   = flag.String("emit-xpdl", "", "write the composed model back as normalized .xpdl to this file")
		configFile = flag.String("config", "", "tool configuration file (filter/elicitation rules)")
		emitUML    = flag.String("emit-uml", "", "write a PlantUML object diagram of the composed model to this file")
		emitReport = flag.String("report", "", "write a Markdown platform report to this file")

		// Remote-fetch robustness knobs (see repo.FetchConfig).
		retries   = flag.Int("remote-retries", 0, "max fetch attempts per remote library (0 = default)")
		fetchTmo  = flag.Duration("remote-timeout", 0, "per-attempt timeout for remote fetches (0 = default)")
		cacheDir  = flag.String("remote-cache", "", "on-disk descriptor cache directory (enables ETag revalidation)")
		repoStats = flag.Bool("repo-stats", false, "print repository robustness counters after processing")

		// Observability (see internal/obs and README "Observability").
		trace    = flag.Bool("trace", false, "print the per-phase span tree (wall time + allocations) after processing")
		metrics  = flag.Bool("metrics", false, "print the metrics registry in Prometheus text format after processing")
		traceOut = flag.String("trace-out", "", "write the span tree and metrics snapshot as JSON to this file")
		obsAddr  = flag.String("obs-addr", "", "serve /metrics, /debug/pprof and /debug/vars on this address while running")
	)
	flag.Parse()
	if *system == "" {
		fmt.Fprintln(os.Stderr, "xpdltool: -system is required")
		flag.Usage()
		os.Exit(2)
	}
	opts := core.Options{
		SearchPaths:        []string{*modelsDir},
		RunMicrobenchmarks: *bench,
		ForceMicrobench:    *force,
		KeepUnknown:        *keep,
		Seed:               *seed,
	}
	if *extraDir != "" {
		opts.SearchPaths = append(opts.SearchPaths, *extraDir)
	}
	if *remote != "" {
		opts.Remotes = append(opts.Remotes, *remote)
	}
	if *retries != 0 || *fetchTmo != 0 || *cacheDir != "" {
		opts.Fetch = &repo.FetchConfig{
			MaxAttempts:       *retries,
			PerAttemptTimeout: *fetchTmo,
			CacheDir:          *cacheDir,
		}
	}
	if *configFile != "" {
		src, err := os.ReadFile(*configFile)
		if err != nil {
			fail(err)
		}
		cfg, err := config.Parse(*configFile, src)
		if err != nil {
			fail(err)
		}
		opts.Config = &cfg
	}
	// A nil root span keeps the whole pipeline on the allocation-free
	// no-op path; any observability flag turns tracing on.
	var root *obs.Span
	if *trace || *traceOut != "" || *obsAddr != "" {
		root = obs.NewSpan("xpdltool")
		opts.Span = root
	}
	if *obsAddr != "" {
		addr, shutdown, err := obs.Serve(*obsAddr)
		if err != nil {
			fail(err)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "xpdltool: observability endpoints on http://%s\n", addr)
	}
	tc, err := core.New(opts)
	if err != nil {
		fail(err)
	}
	tc.Repo.PublishMetrics(nil)
	res, err := tc.Process(*system)
	if err != nil {
		fail(err)
	}

	fmt.Printf("composed %s: %d components, %d attributes\n",
		*system, res.Stats.Components, res.Stats.Attributes)
	kinds := make([]string, 0, len(res.Stats.ByKind))
	for k := range res.Stats.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-22s %6d\n", k, res.Stats.ByKind[k])
	}
	fmt.Printf("synthesized attributes: %d; filtered: %d\n", res.Synthesized, res.Filtered)
	if *repoStats {
		st := tc.Repo.Stats()
		fmt.Printf("repository: %d loads (%d cache hits, %d coalesced), %d local parses, %d remote fetches, %d revalidated (304), %d retries, %d failures, %d misses\n",
			st.Loads, st.CacheHits, st.Coalesced, st.LocalParses, st.RemoteFetches, st.NotModified, st.Retries, st.Failures, st.Misses)
	}
	for _, d := range res.Downgrades {
		fmt.Println("downgrade:", d)
	}
	if res.Microbench != nil {
		fmt.Print(res.Microbench)
	}
	if *verbose {
		fmt.Print(res.System.Tree())
	}
	if *emitXPDL != "" {
		f, err := os.Create(*emitXPDL)
		if err != nil {
			fail(err)
		}
		if err := xmlout.Write(f, res.System); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("normalized XPDL written to %s\n", *emitXPDL)
	}
	if *emitReport != "" {
		if err := os.WriteFile(*emitReport, []byte(report.Markdown(res.System)), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("platform report written to %s\n", *emitReport)
	}
	if *emitUML != "" {
		uml := umlgen.ModelDiagram(res.System, umlgen.ModelDiagramOptions{})
		if err := os.WriteFile(*emitUML, []byte(uml), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("UML object diagram written to %s\n", *emitUML)
	}
	if *out != "" {
		if err := tc.EmitRuntime(res, *out); err != nil {
			fail(err)
		}
		info, err := os.Stat(*out)
		if err != nil {
			fail(err)
		}
		fmt.Printf("runtime model written to %s (%d bytes, %d nodes)\n",
			*out, info.Size(), res.Runtime.Len())
	}

	root.Stop()
	if *trace {
		fmt.Print("\ntrace:\n" + root.Text())
	}
	if *metrics {
		fmt.Println("\nmetrics:")
		if err := obs.Default().WritePrometheus(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *traceOut != "" {
		artifact := struct {
			Span    obs.SpanSnapshot   `json:"span"`
			Metrics map[string]float64 `json:"metrics"`
		}{root.Snapshot(), obs.Default().Snapshot()}
		raw, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*traceOut, raw, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("trace JSON written to %s\n", *traceOut)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xpdltool:", err)
	os.Exit(1)
}
