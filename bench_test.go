// Benchmark harness: one testing.B benchmark per experiment in
// DESIGN.md / EXPERIMENTS.md (E1–E13). The XPDL paper is a design paper
// without numeric result tables, so each benchmark regenerates the
// corresponding artifact or claim: the model-zoo composition, the
// Kepler inheritance chain, power state machines, microbenchmark
// bootstrapping, the conditional-composition case study, query API
// overhead, the PDL baseline, static analysis, the distributed
// repository, the generators, hierarchical energy rollups, DVFS
// optimization, and the runtime model file.
//
// Run: go test -bench=. -benchmem
package xpdl_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"xpdl"
	"xpdl/internal/analysis"
	"xpdl/internal/cluster"
	"xpdl/internal/composition"
	"xpdl/internal/core"
	"xpdl/internal/energy"
	"xpdl/internal/mapping"
	"xpdl/internal/microbench"
	"xpdl/internal/model"
	"xpdl/internal/parser"
	"xpdl/internal/pdl"
	"xpdl/internal/power"
	"xpdl/internal/query"
	"xpdl/internal/repo"
	reposerver "xpdl/internal/repo/server"
	"xpdl/internal/resolve"
	"xpdl/internal/rtmodel"
	"xpdl/internal/simhw"
)

// ---- shared fixtures ----

var (
	fixtureOnce sync.Once
	fixtureErr  error
	liuResult   *core.Result
	liuSession  *query.Session
	xsResult    *core.Result
)

func fixtures(b *testing.B) (*core.Result, *query.Session, *core.Result) {
	b.Helper()
	fixtureOnce.Do(func() {
		tc, err := core.New(core.Options{
			SearchPaths:        []string{"models"},
			RunMicrobenchmarks: true,
			Seed:               42,
		})
		if err != nil {
			fixtureErr = err
			return
		}
		liuResult, err = tc.Process("liu_gpu_server")
		if err != nil {
			fixtureErr = err
			return
		}
		liuSession = query.NewSession(liuResult.Runtime)
		tc2, err := core.New(core.Options{SearchPaths: []string{"models"}})
		if err != nil {
			fixtureErr = err
			return
		}
		xsResult, err = tc2.Process("XScluster")
		if err != nil {
			fixtureErr = err
		}
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return liuResult, liuSession, xsResult
}

// ---- E1: model zoo parse + compose ----

func BenchmarkE1_ModelZooCompose(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc, err := core.New(core.Options{SearchPaths: []string{"models"}})
		if err != nil {
			b.Fatal(err)
		}
		res, err := tc.Process("liu_gpu_server")
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Components < 5000 {
			b.Fatal("composed tree too small")
		}
	}
}

// ---- E2: Kepler inheritance + constraint resolution ----

func BenchmarkE2_InheritanceResolve(b *testing.B) {
	rp, err := repo.New("models")
	if err != nil {
		b.Fatal(err)
	}
	inst := model.New("device")
	inst.ID = "gpu_bench"
	inst.Type = "Nvidia_K20c"
	inst.Params = []*model.Param{
		{Name: "L1size", Value: "16", Unit: "KB"},
		{Name: "shmsize", Value: "48", Unit: "KB"},
	}
	if err := rp.Register(inst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := resolve.New(rp)
		gpu, err := r.ResolveSystem("gpu_bench")
		if err != nil {
			b.Fatal(err)
		}
		if gpu.CountKind("core") != 13*192 {
			b.Fatal("wrong expansion")
		}
	}
}

// ---- E3: power state machine simulation ----

func BenchmarkE3_PowerStateMachine(b *testing.B) {
	sm, err := power.NewStateMachine("bench_psm", "pd",
		[]power.State{
			{Name: "P1", FreqHz: 1.2e9, PowerW: 20},
			{Name: "P2", FreqHz: 1.6e9, PowerW: 27},
			{Name: "P3", FreqHz: 2.0e9, PowerW: 38},
		},
		[]power.Transition{
			{Head: "P2", Tail: "P1", TimeS: 1e-6, EnergyJ: 2e-9},
			{Head: "P3", Tail: "P2", TimeS: 1e-6, EnergyJ: 2e-9},
			{Head: "P1", Tail: "P3", TimeS: 2e-6, EnergyJ: 5e-9},
		})
	if err != nil {
		b.Fatal(err)
	}
	schedule := []power.Step{
		{State: "P3", Duration: 0.4}, {State: "P2", Duration: 0.3},
		{State: "P1", Duration: 0.2}, {State: "P3", Duration: 0.1},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := sm.Simulate("P1", schedule); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E4: microbenchmark bootstrap fidelity ----

func BenchmarkE4_MicrobenchBootstrap(b *testing.B) {
	src, err := os.ReadFile("models/power/x86_base_isa.xpdl")
	if err != nil {
		b.Fatal(err)
	}
	mbSrc, err := os.ReadFile("models/power/mb_x86_base_1.xpdl")
	if err != nil {
		b.Fatal(err)
	}
	p := parser.New()
	suiteComp, _, err := p.ParseFile("mb.xpdl", mbSrc)
	if err != nil {
		b.Fatal(err)
	}
	suite, err := microbench.SuiteFromComponent(suiteComp)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	worst := 0.0
	for i := 0; i < b.N; i++ {
		isaComp, _, err := p.ParseFile("isa.xpdl", src)
		if err != nil {
			b.Fatal(err)
		}
		tab, err := energy.TableFromComponent(isaComp)
		if err != nil {
			b.Fatal(err)
		}
		runner := microbench.NewRunner(simhw.NewX86(int64(i)))
		rep, err := runner.Bootstrap(tab, suite, false)
		if err != nil {
			b.Fatal(err)
		}
		if rep.MaxRelErr() > worst {
			worst = rep.MaxRelErr()
		}
	}
	b.ReportMetric(worst*100, "max-rel-err-%")
}

// ---- E5: conditional composition case study ----

func BenchmarkE5_ConditionalComposition(b *testing.B) {
	_, s, _ := fixtures(b)
	comp := composition.SpMVComponent(s)
	const n = 1024
	densities := []float64{0.001, 0.01, 0.1}
	ctxs := make([]composition.Context, len(densities))
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	for i, d := range densities {
		ctxs[i] = composition.NewSpMVContext(s, composition.RandomMatrix(n, d, int64(i)), x)
	}
	defer func() {
		for _, c := range ctxs {
			composition.ReleaseSpMVContext(c)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ctx := range ctxs {
			if _, _, err := comp.Call(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- E6: runtime query API overhead ----

func BenchmarkE6_QueryAPI(b *testing.B) {
	_, s, _ := fixtures(b)
	b.Run("NumCores", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if s.Root().NumCores() != 2500 {
				b.Fatal("wrong count")
			}
		}
	})
	b.Run("Find", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := s.Find("gpu1"); !ok {
				b.Fatal("not found")
			}
		}
	})
	b.Run("Getter", func(b *testing.B) {
		gpu, _ := s.Find("gpu1")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := gpu.GetFloat("compute_capability"); !ok {
				b.Fatal("missing attr")
			}
		}
	})
	b.Run("Installed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !s.Installed("CUBLAS") {
				b.Fatal("missing software")
			}
		}
	})
}

// ---- E7: PDL baseline: monolithic parse + query; modularity metrics ----

func BenchmarkE7_PDLBaseline(b *testing.B) {
	doc := []byte(pdl.SynthesizeCluster(4, 8))
	b.ReportMetric(float64(len(doc)), "monolithic-bytes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := pdl.Parse("cluster.pdl", doc)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := p.Query("exists(node0_gpu0.N0_GPU0_PROP_0)"); !ok {
			b.Fatal("query failed")
		}
	}
}

// ---- E8: static analysis ----

func BenchmarkE8_StaticAnalysis(b *testing.B) {
	liu, _, _ := fixtures(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := liu.System.Clone()
		analysis.Annotate(sys, analysis.DefaultRules())
		analysis.DowngradeBandwidth(sys)
	}
}

// ---- E9: distributed repository: remote fetch vs cache ----

func BenchmarkE9_DistributedRepo(b *testing.B) {
	mux := http.NewServeMux()
	mux.HandleFunc("/Nvidia_K20c.xpdl", func(w http.ResponseWriter, r *http.Request) {
		src, err := os.ReadFile("models/device/Nvidia_K20c.xpdl")
		if err != nil {
			http.Error(w, err.Error(), 500)
			return
		}
		w.Write(src)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	b.Run("ColdFetch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := repo.New()
			if err != nil {
				b.Fatal(err)
			}
			r.AddRemote(srv.URL)
			if _, err := r.Load("Nvidia_K20c"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CachedLoad", func(b *testing.B) {
		r, err := repo.New()
		if err != nil {
			b.Fatal(err)
		}
		r.AddRemote(srv.URL)
		if _, err := r.Load("Nvidia_K20c"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Load("Nvidia_K20c"); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Revalidated304 measures a repository restart against an unchanged
	// remote: the descriptor is served by the real xpdlrepo handler, the
	// client revalidates its disk cache with If-None-Match and parses
	// the on-disk copy after the 304 — no body transfer.
	b.Run("Revalidated304", func(b *testing.B) {
		h, err := reposerver.New("models/device")
		if err != nil {
			b.Fatal(err)
		}
		realSrv := httptest.NewServer(h)
		defer realSrv.Close()
		cacheDir := b.TempDir()
		cfg := repo.DefaultFetchConfig()
		cfg.CacheDir = cacheDir
		warm, err := repo.New()
		if err != nil {
			b.Fatal(err)
		}
		warm.SetFetchConfig(cfg)
		warm.AddRemote(realSrv.URL)
		if _, err := warm.Load("Nvidia_K20c"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := repo.New()
			if err != nil {
				b.Fatal(err)
			}
			r.SetFetchConfig(cfg)
			r.AddRemote(realSrv.URL)
			if _, err := r.Load("Nvidia_K20c"); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		r, _ := repo.New()
		r.SetFetchConfig(cfg)
		r.AddRemote(realSrv.URL)
		r.Load("Nvidia_K20c")
		if st := r.Stats(); st.NotModified != 1 || st.RemoteFetches != 0 {
			b.Fatalf("revalidation did not take the 304 path: %+v", st)
		}
	})
}

// ---- E10: generators ----

func BenchmarkE10_Codegen(b *testing.B) {
	b.ReportAllocs()
	var bytesOut int
	for i := 0; i < b.N; i++ {
		files, err := xpdl.GenerateCPPAPI()
		if err != nil {
			b.Fatal(err)
		}
		xsd := xpdl.GenerateXSD()
		bytesOut = len(files["xpdl_model.hpp"]) + len(files["xpdl_model.cpp"]) + len(xsd)
	}
	b.ReportMetric(float64(bytesOut), "generated-bytes")
}

// ---- E11: hierarchical energy rollup over the cluster ----

func BenchmarkE11_EnergyRollup(b *testing.B) {
	_, _, xs := fixtures(b)
	b.ReportAllocs()
	var total float64
	for i := 0; i < b.N; i++ {
		bd := energy.StaticBreakdown(xs.System)
		total = bd.TotalW
	}
	b.ReportMetric(total, "cluster-watts")
}

// ---- E12: DVFS optimization vs baselines ----

func BenchmarkE12_DVFSOptimize(b *testing.B) {
	sm, err := power.NewStateMachine("bench_psm", "pd",
		[]power.State{
			{Name: "P1", FreqHz: 1.2e9, PowerW: 20},
			{Name: "P2", FreqHz: 1.6e9, PowerW: 27},
			{Name: "P3", FreqHz: 2.0e9, PowerW: 38},
		},
		[]power.Transition{
			{Head: "P2", Tail: "P1", TimeS: 1e-6, EnergyJ: 2e-9},
			{Head: "P3", Tail: "P2", TimeS: 1e-6, EnergyJ: 2e-9},
			{Head: "P1", Tail: "P3", TimeS: 2e-6, EnergyJ: 5e-9},
		})
	if err != nil {
		b.Fatal(err)
	}
	w := power.Workload{Cycles: 3e9, DeadlineS: 2.0}
	b.ReportAllocs()
	var saved float64
	for i := 0; i < b.N; i++ {
		opt, err := sm.Optimize("P3", w)
		if err != nil {
			b.Fatal(err)
		}
		race, err := sm.RaceToIdle("P3", w)
		if err != nil {
			b.Fatal(err)
		}
		saved = (race.EnergyJ - opt.EnergyJ) / race.EnergyJ * 100
	}
	b.ReportMetric(saved, "energy-saved-%")
}

// ---- E13: runtime model file emission + loading ----

func BenchmarkE13_RuntimeFile(b *testing.B) {
	liu, _, _ := fixtures(b)
	var buf bytes.Buffer
	if err := liu.Runtime.Save(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportMetric(float64(len(raw)), "file-bytes")
	b.Run("Save", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := liu.Runtime.Save(&w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rtmodel.Load(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// sanity: the harness fixtures compose.
func TestBenchFixtures(t *testing.T) {
	tc, err := core.New(core.Options{SearchPaths: []string{"models"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tc.Process("liu_gpu_server")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Components < 5000 {
		t.Fatalf("components = %d", res.Stats.Components)
	}
	_ = fmt.Sprintf("%v", res.Stats.ByKind)
}

// ---- Ablation: serial vs parallel group expansion ----

func BenchmarkAblation_ResolveSerial(b *testing.B) {
	rp, err := repo.New("models")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := resolve.New(rp)
		if _, err := r.ResolveSystem("XScluster"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_ResolveParallel8(b *testing.B) {
	rp, err := repo.New("models")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := resolve.NewParallel(rp, 8)
		if _, err := r.ResolveSystem("XScluster"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation: string interning in the runtime format ----

func BenchmarkAblation_RuntimeFileSize(b *testing.B) {
	liu, _, _ := fixtures(b)
	var buf bytes.Buffer
	if err := liu.Runtime.Save(&buf); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(buf.Len()), "interned-bytes")
	b.ReportMetric(float64(liu.Runtime.Len()), "nodes")
	for i := 0; i < b.N; i++ {
		var w bytes.Buffer
		if err := liu.Runtime.Save(&w); err != nil {
			b.Fatal(err)
		}
	}
}

// TestParallelResolveMatchesSerialOnCluster pins the ablation's
// correctness: both paths produce identical composed trees.
func TestParallelResolveMatchesSerialOnCluster(t *testing.T) {
	rp, err := repo.New("models")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := resolve.New(rp).ResolveSystem("XScluster")
	if err != nil {
		t.Fatal(err)
	}
	par, err := resolve.NewParallel(rp, 8).ResolveSystem("XScluster")
	if err != nil {
		t.Fatal(err)
	}
	if serial.Tree() != par.Tree() {
		t.Fatal("parallel composition diverges from serial")
	}
}

// ---- Ablation: performance-greedy vs energy-greedy task mapping ----

func BenchmarkAblation_MappingPolicies(b *testing.B) {
	_, s, _ := fixtures(b)
	targets := mapping.TargetsFromSession(s)
	var tasks []mapping.Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks,
			mapping.Task{Name: fmt.Sprintf("f%d", i), Cycles: 4e7, Bytes: 1 << 18, Speedup: 20},
			mapping.Task{Name: fmt.Sprintf("s%d", i), Cycles: 3e10, Bytes: 1 << 23, Speedup: 20, Parallelizable: true},
		)
	}
	b.ReportAllocs()
	var saved float64
	for i := 0; i < b.N; i++ {
		perf, err := mapping.MapGreedyTime(tasks, targets)
		if err != nil {
			b.Fatal(err)
		}
		eco, err := mapping.MapGreedyEnergy(tasks, targets, perf.MakespanS*2)
		if err != nil {
			b.Fatal(err)
		}
		saved = (perf.EnergyJ - eco.EnergyJ) / perf.EnergyJ * 100
	}
	b.ReportMetric(saved, "energy-saved-%")
}

// ---- Ablation: system-wide DVFS on the cluster simulator ----

func BenchmarkAblation_ClusterDVFS(b *testing.B) {
	rp, err := repo.New("models")
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cluster.FromSystemID(resolve.New(rp), "XScluster")
	if err != nil {
		b.Fatal(err)
	}
	work := []cluster.Phase{
		{Name: "p1", PerNodeCycles: []float64{4e9, 2e9, 2e9, 2e9}, Bytes: 1 << 20},
		{Name: "p2", PerNodeCycles: []float64{2e9, 4e9, 2e9, 2e9}, Bytes: 1 << 20},
	}
	b.ReportAllocs()
	var saved float64
	for i := 0; i < b.N; i++ {
		maxRep, err := cl.Run(work, cluster.MaxFrequency)
		if err != nil {
			b.Fatal(err)
		}
		optRep, err := cl.Run(work, cluster.EnergyOptimal)
		if err != nil {
			b.Fatal(err)
		}
		saved = (maxRep.TotalJ - optRep.TotalJ) / maxRep.TotalJ * 100
	}
	b.ReportMetric(saved, "energy-saved-%")
}
