module xpdl

go 1.22
