// Package xpdl is a Go implementation of XPDL, the extensible platform
// description language for energy modeling and optimization (Kessler,
// Li, Atalar, Dobre — ICPP-EMS 2015).
//
// XPDL descriptors are machine-readable data sheets of hardware and
// system-software components, organized as a distributed repository of
// reusable submodels. This package is the public facade over the
// toolchain: it composes a concrete system model from its referenced
// submodels (inheritance, parameters, group expansion, constraints),
// runs deployment-time microbenchmarks to fill unknown energy costs,
// performs static analysis, and emits a light-weight runtime model that
// applications introspect through the runtime query API for
// platform-aware adaptive optimization such as conditional composition.
//
// Quick start:
//
//	tc, err := xpdl.NewToolchain(xpdl.Options{
//	    SearchPaths:        []string{"models"},
//	    RunMicrobenchmarks: true,
//	})
//	res, err := tc.Process("liu_gpu_server")
//	err = tc.EmitRuntime(res, "liu.xrt")
//	...
//	s, err := xpdl.OpenRuntime("liu.xrt")      // at application startup
//	cores := s.Root().NumCores()
//	hasCUBLAS := s.Installed("CUBLAS")
package xpdl

import (
	"xpdl/internal/codegen"
	"xpdl/internal/core"
	"xpdl/internal/query"
	"xpdl/internal/schema"
	"xpdl/internal/xsdgen"
)

// Options configure a Toolchain; see core.Options for field docs.
type Options = core.Options

// Toolchain is the XPDL processing tool: repository browsing, model
// composition, microbenchmark bootstrapping, static analysis, runtime
// model emission.
type Toolchain = core.Toolchain

// Result is the outcome of processing one system model.
type Result = core.Result

// Session is an initialized runtime query environment (the equivalent
// of the paper's xpdl_init plus the generated getter API).
type Session = query.Session

// NewToolchain builds a processing tool over the configured model
// repository search paths and remote libraries.
func NewToolchain(opts Options) (*Toolchain, error) { return core.New(opts) }

// OpenRuntime loads a runtime model file written by Toolchain.EmitRuntime
// and returns a query session — the xpdl_init() of the paper.
func OpenRuntime(path string) (*Session, error) { return query.Init(path) }

// GenerateCPPAPI emits the C++ runtime query API (one class per model
// element type, with generated getters and setters) from the core
// schema, as filename → contents.
func GenerateCPPAPI() (map[string]string, error) {
	return codegen.GenerateCPP(schema.Core())
}

// GenerateXSD renders the central xpdl.xsd schema document.
func GenerateXSD() string { return xsdgen.Generate(schema.Core()) }
