#!/usr/bin/env python3
"""Bench regression gate for the binary query protocol (CI).

Reads `go test -bench -benchmem` output on stdin, writes every parsed
benchmark as JSON (the BENCH_6.json artifact), and fails when the
binary serving hot paths allocate more per operation than the
checked-in budget in internal/serve/testdata/alloc_budget.json — the
same ceilings TestBinarySelectAllocBudget enforces in-process, applied
here to the benchmark numbers that land in the artifact.

Usage:
    go test -run=NONE -bench='SelectIndexed|ServeBinary' -benchmem \
        ./internal/query/ ./internal/serve/ | scripts/benchgate.py BENCH_6.json
"""

import json
import re
import sys

# BenchmarkServeBinary/select-bin-8  80000  14394 ns/op  6544 B/op  78 allocs/op
BENCH_RE = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op"
    r"(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?"
)

# benchmark name -> alloc_budget.json key
GATES = {
    "BenchmarkServeBinary/select-bin": "serve_select_bin",
    "BenchmarkServeBinary/summary-bin": "serve_summary_bin",
}


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: benchgate.py <out.json> < bench-output")
    out_path = sys.argv[1]

    results = []
    for line in sys.stdin:
        sys.stdout.write(line)
        m = BENCH_RE.match(line.strip())
        if not m:
            continue
        name, iters, ns = m.group(1), int(m.group(2)), float(m.group(3))
        entry = {"name": name, "iterations": iters, "ns_per_op": ns}
        if m.group(4) is not None:
            entry["bytes_per_op"] = float(m.group(4))
            entry["allocs_per_op"] = float(m.group(5))
        results.append(entry)

    with open("internal/serve/testdata/alloc_budget.json") as f:
        budget = json.load(f)

    failures = []
    gated = {}
    for entry in results:
        key = GATES.get(entry["name"])
        if key is None:
            continue
        limit = budget[key]
        gated[entry["name"]] = {"allocs_per_op": entry.get("allocs_per_op"), "budget": limit}
        if "allocs_per_op" not in entry:
            failures.append(f"{entry['name']}: no allocs/op (run with -benchmem)")
        elif entry["allocs_per_op"] > limit:
            failures.append(
                f"{entry['name']}: {entry['allocs_per_op']} allocs/op exceeds budget {limit}"
            )
    for name in GATES:
        if name not in gated:
            failures.append(f"{name}: benchmark missing from output")

    with open(out_path, "w") as f:
        json.dump({"benchmarks": results, "gates": gated, "failures": failures}, f, indent=2)
        f.write("\n")

    if not results:
        sys.exit("benchgate: no benchmark lines parsed")
    if failures:
        sys.exit("benchgate: FAIL\n  " + "\n  ".join(failures))
    print(f"benchgate: {len(results)} benchmarks, {len(gated)} gated, all within budget")


if __name__ == "__main__":
    main()
