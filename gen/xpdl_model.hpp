// xpdl_model.hpp — XPDL runtime query API.
// GENERATED from the central XPDL schema; do not edit.
//
// One class per XPDL model element type, with getters and setters for
// every declared attribute (quantity attributes are normalized to SI
// base units) and navigation over the model object tree. Derived
// model-analysis functions (core counts, power rollups, ...) are added
// by inheriting from XpdlElement — they are intentionally not generated.
#ifndef XPDL_MODEL_HPP
#define XPDL_MODEL_HPP

#include <string>
#include <vector>

namespace xpdl {

class XpdlElement {
 public:
  virtual ~XpdlElement() = default;

  const std::string& get_kind() const { return kind_; }
  const std::string& get_id() const { return id_; }
  const std::string& get_name() const { return name_; }
  const std::string& get_type() const { return type_; }
  void set_id(const std::string& v) { id_ = v; }
  void set_name(const std::string& v) { name_ = v; }
  void set_type(const std::string& v) { type_ = v; }

  XpdlElement* get_parent() const { return parent_; }
  const std::vector<XpdlElement*>& get_children() const { return children_; }
  void add_child(XpdlElement* c) { children_.push_back(c); c->parent_ = this; }

  // Hook for hand-written derived-attribute analyses (Section IV.4).
  virtual double synthesize(const std::string& attr) const { (void)attr; return 0.0; }

 protected:
  explicit XpdlElement(std::string kind) : kind_(std::move(kind)) {}

 private:
  std::string kind_, id_, name_, type_;
  XpdlElement* parent_ = nullptr;
  std::vector<XpdlElement*> children_;
};

// cache memory; sharing is implied by its scope in the model tree
class XpdlCache : public XpdlElement {
 public:
  XpdlCache() : XpdlElement("cache") {}
  // cache level (1, 2, 3, ...)
  long get_level() const { return level_; }
  void set_level(const long& v) { level_ = v; }
  // associativity sets
  long get_sets() const { return sets_; }
  void set_sets(const long& v) { sets_ = v; }
  // cache line size in bytes
  long get_line_size() const { return line_size_; }
  void set_line_size(const long& v) { line_size_ = v; }
  // replacement policy, e.g. LRU
  std::string get_replacement() const { return replacement_; }
  void set_replacement(const std::string& v) { replacement_ = v; }
  // writethrough or copyback
  std::string get_write_policy() const { return write_policy_; }
  void set_write_policy(const std::string& v) { write_policy_ = v; }
  // capacity (normalized to B)
  double get_size() const { return size_; }
  void set_size(const double& v) { size_ = v; }
  // unit for size
  std::string get_unit() const { return unit_; }
  void set_unit(const std::string& v) { unit_ = v; }

 private:
  long level_{};
  long sets_{};
  long line_size_{};
  std::string replacement_{};
  std::string write_policy_{};
  double size_{};
  std::string unit_{};
};

// one directed channel of an interconnect (e.g. PCIe up_link/down_link)
class XpdlChannel : public XpdlElement {
 public:
  XpdlChannel() : XpdlElement("channel") {}
  // peak channel bandwidth (normalized to B/s)
  double get_max_bandwidth() const { return max_bandwidth_; }
  void set_max_bandwidth(const double& v) { max_bandwidth_ = v; }
  // unit for max_bandwidth
  std::string get_max_bandwidth_unit() const { return max_bandwidth_unit_; }
  void set_max_bandwidth_unit(const std::string& v) { max_bandwidth_unit_ = v; }
  // per-message time offset (normalized to s)
  double get_time_offset_per_message() const { return time_offset_per_message_; }
  void set_time_offset_per_message(const double& v) { time_offset_per_message_ = v; }
  // unit for time_offset_per_message
  std::string get_time_offset_per_message_unit() const { return time_offset_per_message_unit_; }
  void set_time_offset_per_message_unit(const std::string& v) { time_offset_per_message_unit_ = v; }
  // transfer energy per byte (normalized to J)
  double get_energy_per_byte() const { return energy_per_byte_; }
  void set_energy_per_byte(const double& v) { energy_per_byte_ = v; }
  // unit for energy_per_byte
  std::string get_energy_per_byte_unit() const { return energy_per_byte_unit_; }
  void set_energy_per_byte_unit(const std::string& v) { energy_per_byte_unit_ = v; }
  // per-message energy offset (normalized to J)
  double get_energy_offset_per_message() const { return energy_offset_per_message_; }
  void set_energy_offset_per_message(const double& v) { energy_offset_per_message_ = v; }
  // unit for energy_offset_per_message
  std::string get_energy_offset_per_message_unit() const { return energy_offset_per_message_unit_; }
  void set_energy_offset_per_message_unit(const std::string& v) { energy_offset_per_message_unit_ = v; }

 private:
  double max_bandwidth_{};
  std::string max_bandwidth_unit_{};
  double time_offset_per_message_{};
  std::string time_offset_per_message_unit_{};
  double energy_per_byte_{};
  std::string energy_per_byte_unit_{};
  double energy_offset_per_message_{};
  std::string energy_offset_per_message_unit_{};
};

// multi-node aggregate connected by an inter-node network
class XpdlCluster : public XpdlElement {
 public:
  XpdlCluster() : XpdlElement("cluster") {}
};

// named constant of a meta-model
class XpdlConst : public XpdlElement {
 public:
  XpdlConst() : XpdlElement("const") {}
  // constant value when not carried by a metric attribute
  std::string get_value() const { return value_; }
  void set_value(const std::string& v) { value_ = v; }
  // size-typed constant value (normalized to B)
  double get_size() const { return size_; }
  void set_size(const double& v) { size_ = v; }
  // unit for size
  std::string get_unit() const { return unit_; }
  void set_unit(const std::string& v) { unit_ = v; }
  // frequency-typed constant value (normalized to Hz)
  double get_frequency() const { return frequency_; }
  void set_frequency(const double& v) { frequency_ = v; }
  // unit for frequency
  std::string get_frequency_unit() const { return frequency_unit_; }
  void set_frequency_unit(const std::string& v) { frequency_unit_ = v; }

 private:
  std::string value_{};
  double size_{};
  std::string unit_{};
  double frequency_{};
  std::string frequency_unit_{};
};

// a boolean expression that must hold for every concrete configuration
class XpdlConstraint : public XpdlElement {
 public:
  XpdlConstraint() : XpdlElement("constraint") {}
  // constraint expression
  std::string get_expr() const { return expr_; }
  void set_expr(const std::string& v) { expr_ = v; }

 private:
  std::string expr_{};
};

// container for constraints over params/consts
class XpdlConstraints : public XpdlElement {
 public:
  XpdlConstraints() : XpdlElement("constraints") {}
};

// one hardware core
class XpdlCore : public XpdlElement {
 public:
  XpdlCore() : XpdlElement("core") {}
  // byte order: LE or BE
  std::string get_endian() const { return endian_; }
  void set_endian(const std::string& v) { endian_ = v; }
  // optional control role
  std::string get_role() const { return role_; }
  void set_role(const std::string& v) { role_ = v; }
  // ISA family, e.g. sparc_v8, shave_vliw
  std::string get_architecture() const { return architecture_; }
  void set_architecture(const std::string& v) { architecture_ = v; }
  // core clock frequency (normalized to Hz)
  double get_frequency() const { return frequency_; }
  void set_frequency(const double& v) { frequency_ = v; }
  // unit for frequency
  std::string get_frequency_unit() const { return frequency_unit_; }
  void set_frequency_unit(const std::string& v) { frequency_unit_ = v; }

 private:
  std::string endian_{};
  std::string role_{};
  std::string architecture_{};
  double frequency_{};
  std::string frequency_unit_{};
};

// CPU package: cores, caches and an optional power model
class XpdlCpu : public XpdlElement {
 public:
  XpdlCpu() : XpdlElement("cpu") {}
  // optional control role (master/worker/hybrid), kept from PDL as a secondary aspect
  std::string get_role() const { return role_; }
  void set_role(const std::string& v) { role_ = v; }
  // manufacturer
  std::string get_vendor() const { return vendor_; }
  void set_vendor(const std::string& v) { vendor_ = v; }
  // ISA family, e.g. x86_64, sparc_v8
  std::string get_architecture() const { return architecture_; }
  void set_architecture(const std::string& v) { architecture_ = v; }
  // nominal clock frequency (normalized to Hz)
  double get_frequency() const { return frequency_; }
  void set_frequency(const double& v) { frequency_ = v; }
  // unit for frequency
  std::string get_frequency_unit() const { return frequency_unit_; }
  void set_frequency_unit(const std::string& v) { frequency_unit_ = v; }
  // idle package power (normalized to W)
  double get_static_power() const { return static_power_; }
  void set_static_power(const double& v) { static_power_ = v; }
  // unit for static_power
  std::string get_static_power_unit() const { return static_power_unit_; }
  void set_static_power_unit(const std::string& v) { static_power_unit_ = v; }

 private:
  std::string role_{};
  std::string vendor_{};
  std::string architecture_{};
  double frequency_{};
  std::string frequency_unit_{};
  double static_power_{};
  std::string static_power_unit_{};
};

// one (frequency, energy) sample of an instruction's energy function
class XpdlData : public XpdlElement {
 public:
  XpdlData() : XpdlElement("data") {}
  // sample frequency (normalized to Hz)
  double get_frequency() const { return frequency_; }
  void set_frequency(const double& v) { frequency_ = v; }
  // unit for frequency
  std::string get_frequency_unit() const { return frequency_unit_; }
  void set_frequency_unit(const std::string& v) { frequency_unit_ = v; }
  // sample energy (normalized to J)
  double get_energy() const { return energy_; }
  void set_energy(const double& v) { energy_ = v; }
  // unit for energy
  std::string get_energy_unit() const { return energy_unit_; }
  void set_energy_unit(const std::string& v) { energy_unit_ = v; }

 private:
  double frequency_{};
  std::string frequency_unit_{};
  double energy_{};
  std::string energy_unit_{};
};

// accelerator device (GPU, DSP board, ...) with own memory
class XpdlDevice : public XpdlElement {
 public:
  XpdlDevice() : XpdlElement("device") {}
  // optional control role
  std::string get_role() const { return role_; }
  void set_role(const std::string& v) { role_ = v; }
  // CUDA compute capability for Nvidia devices
  double get_compute_capability() const { return compute_capability_; }
  void set_compute_capability(const double& v) { compute_capability_ = v; }
  // idle device power (normalized to W)
  double get_static_power() const { return static_power_; }
  void set_static_power(const double& v) { static_power_ = v; }
  // unit for static_power
  std::string get_static_power_unit() const { return static_power_unit_; }
  void set_static_power_unit(const std::string& v) { static_power_unit_ = v; }

 private:
  std::string role_{};
  double compute_capability_{};
  double static_power_{};
  std::string static_power_unit_{};
};

// GPU device; alias kind for device with GPU-specific conventions
class XpdlGpu : public XpdlElement {
 public:
  XpdlGpu() : XpdlElement("gpu") {}
  // optional control role
  std::string get_role() const { return role_; }
  void set_role(const std::string& v) { role_ = v; }
  // CUDA compute capability for Nvidia devices
  double get_compute_capability() const { return compute_capability_; }
  void set_compute_capability(const double& v) { compute_capability_ = v; }
  // idle device power (normalized to W)
  double get_static_power() const { return static_power_; }
  void set_static_power(const double& v) { static_power_ = v; }
  // unit for static_power
  std::string get_static_power_unit() const { return static_power_unit_; }
  void set_static_power_unit(const std::string& v) { static_power_unit_ = v; }

 private:
  std::string role_{};
  double compute_capability_{};
  double static_power_{};
  std::string static_power_unit_{};
};

// grouping construct; with quantity it denotes a homogeneous replicated group
class XpdlGroup : public XpdlElement {
 public:
  XpdlGroup() : XpdlElement("group") {}
  // identifier prefix for auto-named members (prefix0..prefixN-1)
  std::string get_prefix() const { return prefix_; }
  void set_prefix(const std::string& v) { prefix_ = v; }
  // member count; may reference params (e.g. num_SM)
  std::string get_quantity() const { return quantity_; }
  void set_quantity(const std::string& v) { quantity_ = v; }

 private:
  std::string prefix_{};
  std::string quantity_{};
};

// host operating system
class XpdlHostOS : public XpdlElement {
 public:
  XpdlHostOS() : XpdlElement("hostOS") {}
  // kernel version
  std::string get_kernel() const { return kernel_; }
  void set_kernel(const std::string& v) { kernel_ = v; }

 private:
  std::string kernel_{};
};

// one instruction; energy '?' means 'derive by microbenchmarking at deployment'
class XpdlInst : public XpdlElement {
 public:
  XpdlInst() : XpdlElement("inst") {}
  // microbenchmark deriving this instruction's energy
  std::string get_mb() const { return mb_; }
  void set_mb(const std::string& v) { mb_ = v; }
  // dynamic energy per executed instruction; '?' if unknown (normalized to J)
  double get_energy() const { return energy_; }
  void set_energy(const double& v) { energy_ = v; }
  // unit for energy
  std::string get_energy_unit() const { return energy_unit_; }
  void set_energy_unit(const std::string& v) { energy_unit_ = v; }

 private:
  std::string mb_{};
  double energy_{};
  std::string energy_unit_{};
};

// an installed software package (library, runtime, compiler)
class XpdlInstalled : public XpdlElement {
 public:
  XpdlInstalled() : XpdlElement("installed") {}
  // installation path
  std::string get_path() const { return path_; }
  void set_path(const std::string& v) { path_ = v; }
  // package version
  std::string get_version() const { return version_; }
  void set_version(const std::string& v) { version_ = v; }

 private:
  std::string path_{};
  std::string version_{};
};

// instruction set with per-instruction dynamic energy cost
class XpdlInstructions : public XpdlElement {
 public:
  XpdlInstructions() : XpdlElement("instructions") {}
  // default microbenchmark suite for this ISA
  std::string get_mb() const { return mb_; }
  void set_mb(const std::string& v) { mb_ = v; }

 private:
  std::string mb_{};
};

// an interconnect technology (meta) or a concrete link (instance with head/tail)
class XpdlInterconnect : public XpdlElement {
 public:
  XpdlInterconnect() : XpdlElement("interconnect") {}
  // source endpoint id for a directed link
  std::string get_head() const { return head_; }
  void set_head(const std::string& v) { head_ = v; }
  // target endpoint id for a directed link
  std::string get_tail() const { return tail_; }
  void set_tail(const std::string& v) { tail_ = v; }
  // peak bandwidth when not modeled per channel (normalized to B/s)
  double get_max_bandwidth() const { return max_bandwidth_; }
  void set_max_bandwidth(const double& v) { max_bandwidth_ = v; }
  // unit for max_bandwidth
  std::string get_max_bandwidth_unit() const { return max_bandwidth_unit_; }
  void set_max_bandwidth_unit(const std::string& v) { max_bandwidth_unit_ = v; }
  // per-message latency when not modeled per channel (normalized to s)
  double get_latency() const { return latency_; }
  void set_latency(const double& v) { latency_ = v; }
  // unit for latency
  std::string get_latency_unit() const { return latency_unit_; }
  void set_latency_unit(const std::string& v) { latency_unit_ = v; }

 private:
  std::string head_{};
  std::string tail_{};
  double max_bandwidth_{};
  std::string max_bandwidth_unit_{};
  double latency_{};
  std::string latency_unit_{};
};

// container for interconnect instances of the enclosing scope
class XpdlInterconnects : public XpdlElement {
 public:
  XpdlInterconnects() : XpdlElement("interconnects") {}
};

// memory module or explicitly addressed memory space
class XpdlMemory : public XpdlElement {
 public:
  XpdlMemory() : XpdlElement("memory") {}
  // number of independently accessible slices (e.g. Myriad CMX)
  long get_slices() const { return slices_; }
  void set_slices(const long& v) { slices_ = v; }
  // byte order: LE or BE
  std::string get_endian() const { return endian_; }
  void set_endian(const std::string& v) { endian_ = v; }
  // capacity (normalized to B)
  double get_size() const { return size_; }
  void set_size(const double& v) { size_ = v; }
  // unit for size
  std::string get_unit() const { return unit_; }
  void set_unit(const std::string& v) { unit_ = v; }
  // idle power (normalized to W)
  double get_static_power() const { return static_power_; }
  void set_static_power(const double& v) { static_power_ = v; }
  // unit for static_power
  std::string get_static_power_unit() const { return static_power_unit_; }
  void set_static_power_unit(const std::string& v) { static_power_unit_ = v; }
  // peak bandwidth (normalized to B/s)
  double get_max_bandwidth() const { return max_bandwidth_; }
  void set_max_bandwidth(const double& v) { max_bandwidth_ = v; }
  // unit for max_bandwidth
  std::string get_max_bandwidth_unit() const { return max_bandwidth_unit_; }
  void set_max_bandwidth_unit(const std::string& v) { max_bandwidth_unit_ = v; }

 private:
  long slices_{};
  std::string endian_{};
  double size_{};
  std::string unit_{};
  double static_power_{};
  std::string static_power_unit_{};
  double max_bandwidth_{};
  std::string max_bandwidth_unit_{};
};

// one microbenchmark: source file and build flags
class XpdlMicrobenchmark : public XpdlElement {
 public:
  XpdlMicrobenchmark() : XpdlElement("microbenchmark") {}
  // source file
  std::string get_file() const { return file_; }
  void set_file(const std::string& v) { file_ = v; }
  // compiler flags
  std::string get_cflags() const { return cflags_; }
  void set_cflags(const std::string& v) { cflags_ = v; }
  // linker flags
  std::string get_lflags() const { return lflags_; }
  void set_lflags(const std::string& v) { lflags_ = v; }

 private:
  std::string file_{};
  std::string cflags_{};
  std::string lflags_{};
};

// microbenchmark suite with deployment information
class XpdlMicrobenchmarks : public XpdlElement {
 public:
  XpdlMicrobenchmarks() : XpdlElement("microbenchmarks") {}
  // the ISA this suite calibrates
  std::string get_instruction_set() const { return instruction_set_; }
  void set_instruction_set(const std::string& v) { instruction_set_ = v; }
  // directory holding the benchmark sources
  std::string get_path() const { return path_; }
  void set_path(const std::string& v) { path_ = v; }
  // script that builds and runs the suite
  std::string get_command() const { return command_; }
  void set_command(const std::string& v) { command_ = v; }

 private:
  std::string instruction_set_{};
  std::string path_{};
  std::string command_{};
};

// one compute node: sockets, memory, devices and intra-node interconnects
class XpdlNode : public XpdlElement {
 public:
  XpdlNode() : XpdlElement("node") {}
  // baseline node power including motherboard residual (normalized to W)
  double get_static_power() const { return static_power_; }
  void set_static_power(const double& v) { static_power_ = v; }
  // unit for static_power
  std::string get_static_power_unit() const { return static_power_unit_; }
  void set_static_power_unit(const std::string& v) { static_power_unit_ = v; }

 private:
  double static_power_{};
  std::string static_power_unit_{};
};

// formal parameter of a meta-model, possibly user-configurable
class XpdlParam : public XpdlElement {
 public:
  XpdlParam() : XpdlElement("param") {}
  // whether software may reconfigure the parameter
  bool get_configurable() const { return configurable_; }
  void set_configurable(const bool& v) { configurable_ = v; }
  // comma-separated legal values
  std::string get_range() const { return range_; }
  void set_range(const std::string& v) { range_ = v; }
  // bound value (instances and subtype bindings)
  std::string get_value() const { return value_; }
  void set_value(const std::string& v) { value_ = v; }
  // size-typed binding (normalized to B)
  double get_size() const { return size_; }
  void set_size(const double& v) { size_ = v; }
  // unit for size
  std::string get_unit() const { return unit_; }
  void set_unit(const std::string& v) { unit_ = v; }
  // frequency-typed binding (normalized to Hz)
  double get_frequency() const { return frequency_; }
  void set_frequency(const double& v) { frequency_ = v; }
  // unit for frequency
  std::string get_frequency_unit() const { return frequency_unit_; }
  void set_frequency_unit(const std::string& v) { frequency_unit_ = v; }

 private:
  bool configurable_{};
  std::string range_{};
  std::string value_{};
  double size_{};
  std::string unit_{};
  double frequency_{};
  std::string frequency_unit_{};
};

// group of components switched together in power state transitions
class XpdlPowerDomain : public XpdlElement {
 public:
  XpdlPowerDomain() : XpdlElement("power_domain") {}
  // false marks the main domain that cannot be switched off
  bool get_enableSwitchOff() const { return enableSwitchOff_; }
  void set_enableSwitchOff(const bool& v) { enableSwitchOff_ = v; }
  // condition of the form '<group> off' gating switch-off
  std::string get_switchoffCondition() const { return switchoffCondition_; }
  void set_switchoffCondition(const std::string& v) { switchoffCondition_ = v; }

 private:
  bool enableSwitchOff_{};
  std::string switchoffCondition_{};
};

// set of power domains (power islands) of a component
class XpdlPowerDomains : public XpdlElement {
 public:
  XpdlPowerDomains() : XpdlElement("power_domains") {}
};

// power model reference: domains, state machines and microbenchmarks
class XpdlPowerModel : public XpdlElement {
 public:
  XpdlPowerModel() : XpdlElement("power_model") {}
};

// one P/C state with its frequency and static power level
class XpdlPowerState : public XpdlElement {
 public:
  XpdlPowerState() : XpdlElement("power_state") {}
  // operating frequency in this state (normalized to Hz)
  double get_frequency() const { return frequency_; }
  void set_frequency(const double& v) { frequency_ = v; }
  // unit for frequency
  std::string get_frequency_unit() const { return frequency_unit_; }
  void set_frequency_unit(const std::string& v) { frequency_unit_ = v; }
  // static power drawn in this state (normalized to W)
  double get_power() const { return power_; }
  void set_power(const double& v) { power_ = v; }
  // unit for power
  std::string get_power_unit() const { return power_unit_; }
  void set_power_unit(const std::string& v) { power_unit_ = v; }

 private:
  double frequency_{};
  std::string frequency_unit_{};
  double power_{};
  std::string power_unit_{};
};

// finite state machine over DVFS/sleep states of a power domain
class XpdlPowerStateMachine : public XpdlElement {
 public:
  XpdlPowerStateMachine() : XpdlElement("power_state_machine") {}
  // the domain this PSM controls
  std::string get_power_domain() const { return power_domain_; }
  void set_power_domain(const std::string& v) { power_domain_ = v; }

 private:
  std::string power_domain_{};
};

// container for the PSM's states
class XpdlPowerStates : public XpdlElement {
 public:
  XpdlPowerStates() : XpdlElement("power_states") {}
};

// programming models supported by the enclosing device
class XpdlProgrammingModel : public XpdlElement {
 public:
  XpdlProgrammingModel() : XpdlElement("programming_model") {}
};

// ad-hoc key-value property container (the PDL-inherited escape mechanism)
class XpdlProperties : public XpdlElement {
 public:
  XpdlProperties() : XpdlElement("properties") {}
};

// one free-form property; name is required, all other attributes are free-form
class XpdlProperty : public XpdlElement {
 public:
  XpdlProperty() : XpdlElement("property") {}
  // property value
  std::string get_value() const { return value_; }
  void set_value(const std::string& v) { value_ = v; }

 private:
  std::string value_{};
};

// physical processor socket
class XpdlSocket : public XpdlElement {
 public:
  XpdlSocket() : XpdlElement("socket") {}
};

// installed system software of the enclosing system/node
class XpdlSoftware : public XpdlElement {
 public:
  XpdlSoftware() : XpdlElement("software") {}
};

// top-level model of a complete single- or multi-node computer system
class XpdlSystem : public XpdlElement {
 public:
  XpdlSystem() : XpdlElement("system") {}
};

// a programmer-initiated state switch with its overhead costs
class XpdlTransition : public XpdlElement {
 public:
  XpdlTransition() : XpdlElement("transition") {}
  // source state
  std::string get_head() const { return head_; }
  void set_head(const std::string& v) { head_ = v; }
  // target state
  std::string get_tail() const { return tail_; }
  void set_tail(const std::string& v) { tail_ = v; }
  // switching time overhead (normalized to s)
  double get_time() const { return time_; }
  void set_time(const double& v) { time_ = v; }
  // unit for time
  std::string get_time_unit() const { return time_unit_; }
  void set_time_unit(const std::string& v) { time_unit_ = v; }
  // switching energy overhead (normalized to J)
  double get_energy() const { return energy_; }
  void set_energy(const double& v) { energy_ = v; }
  // unit for energy
  std::string get_energy_unit() const { return energy_unit_; }
  void set_energy_unit(const std::string& v) { energy_unit_ = v; }

 private:
  std::string head_{};
  std::string tail_{};
  double time_{};
  std::string time_unit_{};
  double energy_{};
  std::string energy_unit_{};
};

// container for the PSM's transitions
class XpdlTransitions : public XpdlElement {
 public:
  XpdlTransitions() : XpdlElement("transitions") {}
};

// Factory: instantiate the class for an element kind; returns nullptr
// for unknown kinds (extensions fall back to a generic element).
XpdlElement* xpdl_new_element(const std::string& kind);

}  // namespace xpdl

#endif  // XPDL_MODEL_HPP
