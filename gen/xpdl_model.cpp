// xpdl_model.cpp — XPDL runtime query API factory.
// GENERATED from the central XPDL schema; do not edit.
#include "xpdl_model.hpp"

namespace xpdl {

XpdlElement* xpdl_new_element(const std::string& kind) {
  if (kind == "cache") return new XpdlCache();
  if (kind == "channel") return new XpdlChannel();
  if (kind == "cluster") return new XpdlCluster();
  if (kind == "const") return new XpdlConst();
  if (kind == "constraint") return new XpdlConstraint();
  if (kind == "constraints") return new XpdlConstraints();
  if (kind == "core") return new XpdlCore();
  if (kind == "cpu") return new XpdlCpu();
  if (kind == "data") return new XpdlData();
  if (kind == "device") return new XpdlDevice();
  if (kind == "gpu") return new XpdlGpu();
  if (kind == "group") return new XpdlGroup();
  if (kind == "hostOS") return new XpdlHostOS();
  if (kind == "inst") return new XpdlInst();
  if (kind == "installed") return new XpdlInstalled();
  if (kind == "instructions") return new XpdlInstructions();
  if (kind == "interconnect") return new XpdlInterconnect();
  if (kind == "interconnects") return new XpdlInterconnects();
  if (kind == "memory") return new XpdlMemory();
  if (kind == "microbenchmark") return new XpdlMicrobenchmark();
  if (kind == "microbenchmarks") return new XpdlMicrobenchmarks();
  if (kind == "node") return new XpdlNode();
  if (kind == "param") return new XpdlParam();
  if (kind == "power_domain") return new XpdlPowerDomain();
  if (kind == "power_domains") return new XpdlPowerDomains();
  if (kind == "power_model") return new XpdlPowerModel();
  if (kind == "power_state") return new XpdlPowerState();
  if (kind == "power_state_machine") return new XpdlPowerStateMachine();
  if (kind == "power_states") return new XpdlPowerStates();
  if (kind == "programming_model") return new XpdlProgrammingModel();
  if (kind == "properties") return new XpdlProperties();
  if (kind == "property") return new XpdlProperty();
  if (kind == "socket") return new XpdlSocket();
  if (kind == "software") return new XpdlSoftware();
  if (kind == "system") return new XpdlSystem();
  if (kind == "transition") return new XpdlTransition();
  if (kind == "transitions") return new XpdlTransitions();
  return nullptr;
}

}  // namespace xpdl
